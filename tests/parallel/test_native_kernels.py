"""The native kernel backend: parity, overflow guards, arena, config.

Four contracts from docs/hotpath.md's native-backend section:

* **Kernel parity** — every kernel in ``repro.native.kernels`` must be
  output-identical to a direct reference implementation (and, when numba
  is importable, the compiled twins in ``repro.native._numba`` must
  match the numpy bodies bit for bit on the same inputs).
* **Overflow guards** — :class:`BatchFrame`'s int32 compaction must
  widen transparently when edge/vertex ids straddle the int32 boundary:
  the compact run and the pinned-int64 run are bit-identical through the
  full columnar matcher (matching, sample spaces, ledger).
* **Arena semantics** — :class:`ColumnArena` reuses named buffers
  (zero-copy between batches), keys by dtype so widening never aliases
  a narrow buffer, and grows capacity in powers of two.
* **Config robustness** — ``REPRO_VEC_MIN`` parsing never raises
  (invalid values warn once and fall back; negatives clamp to 0), and
  ``native.configure`` treats an invalid mode as ``auto`` with a
  warning rather than taking the pipeline down.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import native
from repro.hypergraph.edge import Edge
from repro.native import kernels as npk
from repro.native.arena import ColumnArena
from repro.parallel.frames import BatchFrame
from repro.parallel.ledger import Ledger
from repro.static_matching import parallel_greedy
from repro.static_matching.parallel_greedy import parallel_greedy_match

try:
    from repro.native._numba import NUMBA_KERNELS

    HAVE_NUMBA = True
except ImportError:
    NUMBA_KERNELS = {}
    HAVE_NUMBA = False

I32_MAX = np.iinfo(np.int32).max


@pytest.fixture(autouse=True)
def _restore_native_mode():
    prev = native.MODE
    yield
    native.configure(prev)


# --------------------------------------------------------------------- #
# Reference implementations (deliberately naive)
# --------------------------------------------------------------------- #
def _group_index_ref(keys: np.ndarray):
    """Dict-of-lists grouping, the semantics _group_index must encode."""
    groups: dict = {}
    for i, k in enumerate(keys.tolist()):
        groups.setdefault(k, []).append(i)
    return groups  # first-occurrence key order, ascending indices


def _first_alive_ref(done, csr_edge, boff, bt, bL):
    """Per-vertex linear scan: first j in [t, L) whose edge is alive."""
    out = np.full(bt.size, -1, dtype=np.int64)
    for b in range(bt.size):
        for j in range(int(bt[b]), int(bL[b])):
            if done[csr_edge[int(boff[b]) + j]] == 0:
                out[b] = j
                break
    return out


def _reconstruct_groups(keys, order, starts, rank):
    """Expand a (order, starts, rank) skeleton back to dict-of-lists."""
    spans = np.r_[starts, keys.size]
    out: dict = {}
    for g in rank.tolist():
        idxs = order[spans[g]:spans[g + 1]]
        out[keys[idxs[0]].item()] = idxs.tolist()
    return out


# --------------------------------------------------------------------- #
# Kernel parity vs references
# --------------------------------------------------------------------- #
keys_arrays = st.lists(st.integers(-5, 5), max_size=60).map(
    lambda xs: np.array(xs, dtype=np.int64)
)


class TestNumpyKernelParity:
    @given(keys_arrays.filter(lambda a: a.size > 0))
    def test_group_index(self, keys):
        order, starts, rank = npk.group_index(keys)
        assert _reconstruct_groups(keys, order, starts, rank) == _group_index_ref(keys)
        # stable: indices within each group ascend
        spans = np.r_[starts, keys.size]
        for g in range(starts.size):
            seg = order[spans[g]:spans[g + 1]]
            assert np.all(np.diff(seg) > 0)

    @given(
        st.lists(
            st.tuples(st.integers(0, 30), st.integers(0, 6)), max_size=20
        )
    )
    def test_seg_gather_index(self, segs):
        starts = np.array([s for s, _ in segs], dtype=np.int64)
        counts = np.array([c for _, c in segs], dtype=np.int64)
        total = int(counts.sum())
        expect = [s + j for s, c in segs for j in range(c)]
        got = npk.seg_gather_index(starts, counts, total)
        assert got.tolist() == expect

    @given(keys_arrays)
    def test_dedup_first_index(self, items):
        got = npk.dedup_first_index(items)
        seen: dict = {}
        for i, x in enumerate(items.tolist()):
            seen.setdefault(x, i)
        assert got.tolist() == sorted(seen.values())
        # gathering through it yields first-occurrence order
        assert items[got].tolist() == list(seen.keys())

    @given(st.lists(st.booleans(), max_size=60))
    def test_pack_index(self, flags):
        arr = np.array(flags, dtype=bool)
        assert npk.pack_index(arr).tolist() == [
            i for i, f in enumerate(flags) if f
        ]

    @given(st.data())
    def test_first_alive(self, data):
        ne = data.draw(st.integers(1, 10))
        done = np.array(
            data.draw(
                st.lists(st.integers(0, 1), min_size=ne, max_size=ne)
            ),
            dtype=np.uint8,
        )
        nv = data.draw(st.integers(1, 6))
        lists = [
            data.draw(st.lists(st.integers(0, ne - 1), max_size=8))
            for _ in range(nv)
        ]
        bL = np.array([len(l) for l in lists], dtype=np.int64)
        boff = np.zeros(nv, dtype=np.int64)
        np.cumsum(bL[:-1], out=boff[1:])
        csr_edge = np.array(
            [e for l in lists for e in l], dtype=np.int64
        )
        bt = np.array(
            [data.draw(st.integers(0, len(l))) for l in lists],
            dtype=np.int64,
        )
        got = npk.first_alive(done, csr_edge, boff, bt, bL)
        expect = _first_alive_ref(done, csr_edge, boff, bt, bL)
        assert got.tolist() == expect.tolist()

    def test_first_alive_empty(self):
        z = np.zeros(0, dtype=np.int64)
        out = npk.first_alive(np.zeros(0, dtype=np.uint8), z, z, z, z)
        assert out.size == 0


@pytest.mark.skipif(not HAVE_NUMBA, reason="numba not installed")
class TestNumbaKernelParity:
    """The compiled twins must match the numpy bodies bit for bit."""

    @given(keys_arrays.filter(lambda a: a.size > 0))
    @settings(deadline=None)  # first call JIT-compiles
    def test_group_index(self, keys):
        for a, b in zip(
            NUMBA_KERNELS["group_index"](keys), npk.group_index(keys)
        ):
            assert np.array_equal(a, b)

    @given(
        st.lists(
            st.tuples(st.integers(0, 30), st.integers(0, 6)), max_size=20
        )
    )
    @settings(deadline=None)
    def test_seg_gather_index(self, segs):
        starts = np.array([s for s, _ in segs], dtype=np.int64)
        counts = np.array([c for _, c in segs], dtype=np.int64)
        total = int(counts.sum())
        assert np.array_equal(
            NUMBA_KERNELS["seg_gather_index"](starts, counts, total),
            npk.seg_gather_index(starts, counts, total),
        )

    @given(keys_arrays)
    @settings(deadline=None)
    def test_dedup_and_pack(self, items):
        assert np.array_equal(
            NUMBA_KERNELS["dedup_first_index"](items),
            npk.dedup_first_index(items),
        )
        flags = (items % 2 == 0) if items.size else items.astype(bool)
        assert np.array_equal(
            NUMBA_KERNELS["pack_index"](flags), npk.pack_index(flags)
        )

    @given(st.data())
    @settings(deadline=None)
    def test_first_alive(self, data):
        ne = data.draw(st.integers(1, 8))
        done = np.array(
            data.draw(
                st.lists(st.integers(0, 1), min_size=ne, max_size=ne)
            ),
            dtype=np.uint8,
        )
        nv = data.draw(st.integers(1, 5))
        lists = [
            data.draw(st.lists(st.integers(0, ne - 1), max_size=6))
            for _ in range(nv)
        ]
        bL = np.array([len(l) for l in lists], dtype=np.int64)
        boff = np.zeros(nv, dtype=np.int64)
        np.cumsum(bL[:-1], out=boff[1:])
        csr_edge = np.array([e for l in lists for e in l], dtype=np.int64)
        bt = np.array(
            [data.draw(st.integers(0, len(l))) for l in lists],
            dtype=np.int64,
        )
        assert np.array_equal(
            NUMBA_KERNELS["first_alive"](done, csr_edge, boff, bt, bL),
            npk.first_alive(done, csr_edge, boff, bt, bL),
        )


# --------------------------------------------------------------------- #
# Overflow guards: int32 compaction widens transparently
# --------------------------------------------------------------------- #
def _edges_from_pairs(pairs):
    return [Edge(i, vs) for i, vs in enumerate(pairs)]


# Vertex ids straddling the int32 boundary: some below, some above.
straddling_edge_lists = st.lists(
    st.tuples(
        st.integers(I32_MAX - 40, I32_MAX + 40),
        st.integers(I32_MAX - 40, I32_MAX + 40),
    ).filter(lambda p: p[0] != p[1]),
    min_size=1,
    max_size=24,
    unique=True,
)


def _match_fingerprint(res):
    return (
        [
            (m.edge.eid, tuple(sorted(s.eid for s in m.samples)))
            for m in res.matches
        ],
        res.rounds,
        res.priorities,
    )


def _ledger_fingerprint(led):
    return (led.work, led.depth, dict(led.by_tag))


class TestOverflowGuards:
    @given(straddling_edge_lists)
    @settings(max_examples=30, deadline=None)
    def test_frame_widens_and_values_survive(self, pairs):
        edges = _edges_from_pairs(pairs)
        frame = BatchFrame.from_edges(edges)
        # any vertex beyond int32 forces the guard to keep the wide dtype
        needs_wide = max(v for p in pairs for v in p) > I32_MAX
        assert frame.vflat.dtype == (np.int64 if needs_wide else np.int32)
        wide = BatchFrame.from_edges(edges, compact=False)
        assert frame.vflat.tolist() == wide.vflat.tolist()
        assert frame.eids.tolist() == wide.eids.tolist()
        # eids are small here, so the id column does compact
        assert frame.eids.dtype == np.int32

    @given(straddling_edge_lists)
    @settings(max_examples=20, deadline=None)
    def test_matcher_bit_identical_to_int64_run(self, pairs):
        edges = _edges_from_pairs(pairs)
        led_c, led_w = Ledger(), Ledger()
        res_c = parallel_greedy_match(
            edges,
            led_c,
            np.random.default_rng(11),
            vectorize=True,
            frame=BatchFrame.from_edges(edges),
        )
        res_w = parallel_greedy_match(
            edges,
            led_w,
            np.random.default_rng(11),
            vectorize=True,
            frame=BatchFrame.from_edges(edges, compact=False),
        )
        assert _match_fingerprint(res_c) == _match_fingerprint(res_w)
        assert _ledger_fingerprint(led_c) == _ledger_fingerprint(led_w)

    def test_compact_dtype_when_everything_fits(self):
        edges = [Edge(0, (1, 2)), Edge(1, (2, 3))]
        frame = BatchFrame.from_edges(edges)
        assert frame.vflat.dtype == np.int32
        assert frame.eids.dtype == np.int32

    def test_arena_widening_does_not_alias(self):
        arena = ColumnArena()
        small = BatchFrame.from_edges(
            [Edge(0, (1, 2))], arena=arena, tag="t"
        )
        assert small.vflat.dtype == np.int32
        big = BatchFrame.from_edges(
            [Edge(1, (I32_MAX + 1, I32_MAX + 2))], arena=arena, tag="t"
        )
        assert big.vflat.dtype == np.int64
        assert big.vflat.tolist() == [I32_MAX + 1, I32_MAX + 2]


# --------------------------------------------------------------------- #
# ColumnArena semantics
# --------------------------------------------------------------------- #
class TestColumnArena:
    def test_reuse_same_buffer(self):
        arena = ColumnArena()
        a = arena.take("x", 10, np.int64)
        b = arena.take("x", 8, np.int64)
        assert a.base is b.base or a.base is b or b.base is a

    def test_growth_is_pow2_and_monotone(self):
        arena = ColumnArena()
        arena.take("x", 10, np.int64)
        assert arena.nbytes == 64 * 8  # min capacity 64
        arena.take("x", 100, np.int64)
        assert arena.nbytes == 128 * 8
        arena.take("x", 5, np.int64)  # never shrinks
        assert arena.nbytes == 128 * 8

    def test_dtype_keying(self):
        arena = ColumnArena()
        a = arena.take("x", 4, np.int32)
        b = arena.take("x", 4, np.int64)
        a.fill(1)
        b.fill(2)
        assert a.tolist() == [1, 1, 1, 1]
        assert b.tolist() == [2, 2, 2, 2]

    def test_take2d_shape_and_reuse(self):
        arena = ColumnArena()
        m = arena.take2d("ev", 3, 2, np.int64)
        assert m.shape == (3, 2)
        m.fill(7)
        again = arena.take2d("ev", 3, 2, np.int64)
        assert again[0, 0] == 7  # uninitialized contents = previous batch

    def test_clear(self):
        arena = ColumnArena()
        arena.take("x", 4, np.int64)
        arena.clear()
        assert arena.nbytes == 0


# --------------------------------------------------------------------- #
# Config robustness
# --------------------------------------------------------------------- #
class TestVecMinParsing:
    @pytest.fixture(autouse=True)
    def _fresh_cache(self):
        saved = dict(parallel_greedy._VEC_MIN_CACHE)
        parallel_greedy._VEC_MIN_CACHE.clear()
        yield
        parallel_greedy._VEC_MIN_CACHE.clear()
        parallel_greedy._VEC_MIN_CACHE.update(saved)

    def test_unset_uses_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_VEC_MIN", raising=False)
        assert parallel_greedy._vec_min() == parallel_greedy._vec_min_default()

    def test_valid_value(self, monkeypatch):
        monkeypatch.setenv("REPRO_VEC_MIN", "17")
        assert parallel_greedy._vec_min() == 17

    def test_invalid_does_not_raise_and_warns_once(self, monkeypatch):
        monkeypatch.setenv("REPRO_VEC_MIN", "banana")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            val = parallel_greedy._vec_min()
            parallel_greedy._vec_min()  # cached: no second warning
        assert val == parallel_greedy._vec_min_default()
        ours = [w for w in caught if "REPRO_VEC_MIN" in str(w.message)]
        assert len(ours) == 1
        assert issubclass(ours[0].category, RuntimeWarning)

    def test_negative_clamps_to_zero_with_warning(self, monkeypatch):
        monkeypatch.setenv("REPRO_VEC_MIN", "-3")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert parallel_greedy._vec_min() == 0
        assert any("REPRO_VEC_MIN" in str(w.message) for w in caught)

    def test_invalid_value_still_matches(self, monkeypatch):
        """A bad REPRO_VEC_MIN must not take the matcher down."""
        monkeypatch.setenv("REPRO_VEC_MIN", "not-an-int")
        edges = [Edge(i, (i, i + 1)) for i in range(8)]
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            res = parallel_greedy_match(
                edges, Ledger(), np.random.default_rng(0)
            )
        covered = {v for m in res.matches for v in m.edge.vertices}
        for e in edges:  # maximality
            assert any(v in covered for v in e.vertices)


class TestNativeConfigure:
    def test_invalid_mode_warns_and_uses_auto(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            backend = native.configure("bogus")
        assert backend in ("numba", "numpy")
        assert native.MODE == "auto"
        assert any("invalid native backend" in str(w.message) for w in caught)

    def test_off_disables_dispatch(self):
        native.configure("off")
        assert native.get("group_index") is None
        assert not native.available()

    def test_numpy_mode_counts_dispatches(self):
        native.configure("numpy")
        assert native.BACKEND == "numpy"
        native.reset_stats()
        k = native.get("pack_index")
        assert k is not None
        k(np.array([True, False, True]))
        assert native.stats()["pack_index"]["calls"] == 1

    def test_timing_hook_fires_and_detaches(self):
        native.configure("numpy")
        seen = []
        prev = native.set_timing_hook(lambda name, dt: seen.append(name))
        try:
            native.get("pack_index")(np.array([True]))
        finally:
            assert native.set_timing_hook(prev) is not None
        assert seen == ["pack_index"]
