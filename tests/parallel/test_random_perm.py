"""Tests for the parallel random permutation / priority generation."""

import numpy as np
import pytest

from repro.parallel.ledger import Ledger
from repro.parallel.random_perm import random_permutation, random_priorities


class TestRandomPermutation:
    def test_is_permutation(self, ledger, rng):
        perm = random_permutation(ledger, 100, rng)
        assert sorted(perm) == list(range(100))

    def test_empty(self, ledger, rng):
        assert len(random_permutation(ledger, 0, rng)) == 0

    def test_negative_rejected(self, ledger, rng):
        with pytest.raises(ValueError):
            random_permutation(ledger, -1, rng)

    def test_deterministic_given_rng(self, ledger):
        a = random_permutation(ledger, 50, np.random.default_rng(7))
        b = random_permutation(ledger, 50, np.random.default_rng(7))
        assert (a == b).all()

    def test_cost(self):
        led = Ledger()
        random_permutation(led, 1024, np.random.default_rng(0))
        assert led.work == 1024
        assert led.depth == 10

    def test_roughly_uniform_first_element(self):
        """Chi-square-ish sanity: position of item 0 spreads over slots."""
        counts = np.zeros(8)
        for seed in range(400):
            perm = random_permutation(Ledger(), 8, np.random.default_rng(seed))
            counts[np.where(perm == 0)[0][0]] += 1
        assert counts.min() > 20  # expected 50 each


class TestRandomPriorities:
    def test_is_inverse_of_permutation(self, ledger):
        rng_a, rng_b = np.random.default_rng(3), np.random.default_rng(3)
        perm = random_permutation(ledger, 30, rng_a)
        pri = random_priorities(ledger, 30, rng_b)
        for rank, item in enumerate(perm):
            assert pri[item] == rank

    def test_is_permutation_of_ranks(self, ledger, rng):
        pri = random_priorities(ledger, 64, rng)
        assert sorted(pri) == list(range(64))
