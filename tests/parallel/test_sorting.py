"""Unit and property tests for parallel integer sorting."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.parallel.ledger import Ledger
from repro.parallel.sorting import (
    bucket_by_key,
    counting_sort,
    radix_sort,
    sort_by_priority,
)


class TestCountingSort:
    def test_sorts(self, ledger):
        out = counting_sort(ledger, [5, 1, 4, 1, 3], key=lambda x: x, key_range=6)
        assert out == [1, 1, 3, 4, 5]

    def test_stable(self, ledger):
        items = [("a", 1), ("b", 0), ("c", 1), ("d", 0)]
        out = counting_sort(ledger, items, key=lambda x: x[1], key_range=2)
        assert out == [("b", 0), ("d", 0), ("a", 1), ("c", 1)]

    def test_empty(self, ledger):
        assert counting_sort(ledger, [], key=lambda x: x, key_range=4) == []

    def test_out_of_range_rejected(self, ledger):
        with pytest.raises(ValueError):
            counting_sort(ledger, [5], key=lambda x: x, key_range=5)
        with pytest.raises(ValueError):
            counting_sort(ledger, [-1], key=lambda x: x, key_range=5)

    def test_invalid_range(self, ledger):
        with pytest.raises(ValueError):
            counting_sort(ledger, [], key=lambda x: x, key_range=0)

    def test_cost(self):
        led = Ledger()
        counting_sort(led, list(range(100)), key=lambda x: x, key_range=100)
        assert led.work == 200

    @given(st.lists(st.integers(0, 63), max_size=80))
    def test_property_matches_sorted(self, values):
        led = Ledger()
        out = counting_sort(led, values, key=lambda x: x, key_range=64)
        assert out == sorted(values)


class TestRadixSort:
    def test_sorts_large_keys(self, ledger):
        vals = [90210, 7, 512, 44, 100000, 0]
        out = radix_sort(ledger, vals, key=lambda x: x, key_bound=10**6)
        assert out == sorted(vals)

    def test_stable(self, ledger):
        items = [("a", 300), ("b", 44), ("c", 300)]
        out = radix_sort(ledger, items, key=lambda x: x[1], key_bound=1000, base=10)
        assert out == [("b", 44), ("a", 300), ("c", 300)]

    def test_single_digit(self, ledger):
        out = radix_sort(ledger, [3, 1, 2], key=lambda x: x, key_bound=4, base=16)
        assert out == [1, 2, 3]

    def test_empty(self, ledger):
        assert radix_sort(ledger, [], key=lambda x: x, key_bound=10) == []

    def test_validation(self, ledger):
        with pytest.raises(ValueError):
            radix_sort(ledger, [1], key=lambda x: x, key_bound=0)
        with pytest.raises(ValueError):
            radix_sort(ledger, [1], key=lambda x: x, key_bound=10, base=1)
        with pytest.raises(ValueError):
            radix_sort(ledger, [10], key=lambda x: x, key_bound=10)

    @given(st.lists(st.integers(0, 10**6 - 1), max_size=60), st.sampled_from([2, 10, 256]))
    def test_property_matches_sorted(self, values, base):
        led = Ledger()
        out = radix_sort(led, values, key=lambda x: x, key_bound=10**6, base=base)
        assert out == sorted(values)


class TestBucketByKey:
    def test_partitions_stably(self, ledger):
        out = bucket_by_key(ledger, [3, 0, 3, 1], key=lambda x: x, num_buckets=4)
        assert out == [[0], [1], [], [3, 3]]

    def test_out_of_range(self, ledger):
        with pytest.raises(ValueError):
            bucket_by_key(ledger, [9], key=lambda x: x, num_buckets=4)

    def test_invalid_buckets(self, ledger):
        with pytest.raises(ValueError):
            bucket_by_key(ledger, [], key=lambda x: x, num_buckets=0)


class TestSortByPriority:
    def test_permutation_ranks(self, ledger):
        items = ["c", "a", "b"]
        pri = {"c": 2, "a": 0, "b": 1}
        out = sort_by_priority(ledger, items, lambda x: pri[x], 3)
        assert out == ["a", "b", "c"]

    @given(st.integers(1, 60))
    def test_property_inverts_any_permutation(self, n):
        rng = np.random.default_rng(n)
        perm = rng.permutation(n)
        items = list(range(n))
        out = sort_by_priority(Ledger(), items, lambda i: int(perm[i]), n)
        assert [int(perm[i]) for i in out] == list(range(n))
