"""Unit tests for the real-multicore execution engine's parts.

Scheduler and shm/kernel tests are plain units; everything that forks
real worker processes carries the ``parallel`` marker (CI runs them in a
dedicated job with a pinned worker count).
"""

import numpy as np
import pytest

from repro.parallel.engine import (
    Engine,
    EngineConfig,
    EngineError,
    KERNELS,
    LedgerCalibratedScheduler,
    PersistentPool,
    SchedulerConfig,
    WorkerCache,
    attach,
    make_segment,
)
from repro.parallel.engine.kernels import gather_roots_reference


# --------------------------------------------------------------------- #
# Scheduler
# --------------------------------------------------------------------- #
class TestScheduler:
    def test_serial_below_cutoff(self):
        """The scheduler NEVER parallelizes below the calibrated cutoff."""
        sched = LedgerCalibratedScheduler(
            8, SchedulerConfig(cutoff_work=1000.0, min_items_per_task=1)
        )
        rng = np.random.default_rng(0)
        for _ in range(500):
            work = float(rng.uniform(0, 1000.0 - 1e-9))
            depth = float(rng.uniform(0, 100))
            n_items = int(rng.integers(1, 10_000))
            assert sched.decide(work, depth, n_items) == 1

    def test_serial_with_one_worker(self):
        sched = LedgerCalibratedScheduler(1, SchedulerConfig(cutoff_work=0.0))
        assert sched.decide(1e12, 1.0, 10_000) == 1

    def test_parallelizes_big_flat_round(self):
        sched = LedgerCalibratedScheduler(
            4,
            SchedulerConfig(
                cutoff_work=100.0, min_items_per_task=1, task_overhead_work=10.0,
                assume_cores=8,
            ),
        )
        chunks = sched.decide(work=1e6, depth=10.0, n_items=10_000)
        assert 2 <= chunks <= 4

    def test_min_items_per_task_limits_chunks(self):
        sched = LedgerCalibratedScheduler(
            8,
            SchedulerConfig(
                cutoff_work=0.0, min_items_per_task=10, task_overhead_work=0.0,
                margin=1.0, assume_cores=8,
            ),
        )
        # 25 items / 10 per task -> at most 2 chunks, regardless of workers.
        assert sched.decide(1e6, 1.0, 25) <= 2
        # 9 items cannot even fill two tasks -> serial.
        assert sched.decide(1e6, 1.0, 9) == 1

    def test_chunks_clamped_to_cores(self):
        # 8 workers but only 2 assumed cores: never more than 2 chunks.
        sched = LedgerCalibratedScheduler(
            8,
            SchedulerConfig(
                cutoff_work=0.0, min_items_per_task=1, task_overhead_work=0.0,
                margin=1.0, assume_cores=2,
            ),
        )
        assert sched.decide(1e6, 1.0, 10_000) == 2

    def test_deep_round_stays_serial(self):
        # Brent: when depth ~ work, splitting buys nothing.
        sched = LedgerCalibratedScheduler(
            4,
            SchedulerConfig(cutoff_work=0.0, min_items_per_task=1, assume_cores=8),
        )
        assert sched.decide(work=1e5, depth=1e5, n_items=1000) == 1

    def test_calibration_sets_cutoff_above_overhead(self):
        sched = LedgerCalibratedScheduler(4)
        sched.apply_calibration(
            roundtrip_seconds=1e-3, seconds_per_work_unit=1e-6
        )
        assert sched.config.task_overhead_work == pytest.approx(1000.0)
        assert sched.config.cutoff_work == pytest.approx(8000.0)
        # Just below the cutoff: still serial.
        assert sched.decide(7999.0, 1.0, 10_000) == 1

    def test_calibration_rejects_bad_timings(self):
        sched = LedgerCalibratedScheduler(4)
        with pytest.raises(ValueError):
            sched.apply_calibration(-1.0, 1e-6)
        with pytest.raises(ValueError):
            sched.apply_calibration(1e-3, 0.0)


# --------------------------------------------------------------------- #
# Shared-memory segments
# --------------------------------------------------------------------- #
class TestSegments:
    @pytest.mark.parametrize("use_shm", [False, True])
    def test_roundtrip(self, use_shm):
        arr = np.arange(100, dtype=np.int64).reshape(10, 10)
        seg = make_segment("a", arr, use_shm=use_shm)
        try:
            att = attach(seg.descriptor())
            np.testing.assert_array_equal(att.array, arr)
            assert att.array.dtype == arr.dtype
            att.close()
        finally:
            seg.close()

    def test_shm_mutation_visible_through_attachment(self):
        arr = np.zeros(8, dtype=np.uint8)
        seg = make_segment("done", arr, use_shm=True)
        try:
            att = attach(seg.descriptor())
            seg.array[3] = 1  # master writes the shm-backed view...
            assert att.array[3] == 1  # ...attacher sees it without re-publish
            att.close()
        finally:
            seg.close()

    def test_bytes_mutation_not_visible(self):
        arr = np.zeros(8, dtype=np.uint8)
        seg = make_segment("done", arr, use_shm=False)
        att = attach(seg.descriptor())
        seg.array[3] = 1
        assert att.array[3] == 0  # bytes transport snapshots at publish
        seg.close()

    def test_transport_bytes(self):
        arr = np.zeros(1000, dtype=np.int64)
        assert make_segment("x", arr, use_shm=False).transport_bytes() == 8000
        seg = make_segment("x", arr, use_shm=True)
        try:
            assert seg.transport_bytes() < 100  # just the name
        finally:
            seg.close()

    def test_worker_cache_replaces_and_drops(self):
        cache = WorkerCache()
        a = np.arange(4, dtype=np.int64)
        cache.publish(1, make_segment("x", a, use_shm=False).descriptor())
        cache.publish(1, make_segment("x", a * 2, use_shm=False).descriptor())
        np.testing.assert_array_equal(cache.arrays(1)["x"], a * 2)
        cache.drop_arena(1)
        with pytest.raises(KeyError):
            cache.arrays(1)
        cache.close()


# --------------------------------------------------------------------- #
# The gather kernel vs its straight-line reference
# --------------------------------------------------------------------- #
def _random_instance(rng, nv, m, rank):
    """Random CSR incidence + ev table + done flags, matcher-shaped."""
    verts = [
        sorted(rng.choice(nv, size=rng.integers(2, rank + 1), replace=False))
        for _ in range(m)
    ]
    vertex_edges = {}
    for i in rng.permutation(m):
        for v in verts[i]:
            vertex_edges.setdefault(int(v), []).append(int(i))
    vids = {v: d for d, v in enumerate(vertex_edges)}
    off = np.zeros(len(vids) + 1, dtype=np.int64)
    np.cumsum([len(l) for l in vertex_edges.values()], out=off[1:])
    ce = np.fromiter(
        (i for l in vertex_edges.values() for i in l), np.int64, int(off[-1])
    )
    ev = np.full((m, rank), -1, dtype=np.int64)
    for i, vs in enumerate(verts):
        for j, v in enumerate(vs):
            ev[i, j] = vids[int(v)]
    done = (rng.random(m) < 0.3).astype(np.uint8)
    return off, ce, ev, done


class TestGatherKernel:
    @pytest.mark.parametrize("rank", [2, 3])
    def test_matches_reference(self, rank):
        rng = np.random.default_rng(7 + rank)
        for trial in range(20):
            nv = int(rng.integers(4, 40))
            m = int(rng.integers(1, 120))
            off, ce, ev, done = _random_instance(rng, nv, m, rank)
            k = int(rng.integers(1, m + 1))
            roots = rng.choice(m, size=k, replace=False).astype(np.int64)
            buf = np.zeros(m, dtype=np.int64)
            buf[:k] = roots
            arrays = {
                "csr_off": off, "csr_edge": ce, "ev": ev,
                "done": done, "roots": buf,
            }
            flat, cnts = KERNELS["gather_roots"](
                arrays, {"start": 0, "stop": k, "m": m}
            )
            ref = gather_roots_reference(off, ce, ev, done, roots)
            assert cnts.tolist() == [len(r) for r in ref]
            got, pos = [], 0
            for c in cnts.tolist():
                got.append(flat[pos:pos + c].tolist())
                pos += c
            assert got == ref

    def test_chunked_equals_whole(self):
        rng = np.random.default_rng(3)
        off, ce, ev, done = _random_instance(rng, 30, 100, 2)
        roots = rng.choice(100, size=40, replace=False).astype(np.int64)
        buf = np.zeros(100, dtype=np.int64)
        buf[:40] = roots
        arrays = {
            "csr_off": off, "csr_edge": ce, "ev": ev, "done": done, "roots": buf,
        }
        whole_flat, whole_cnts = KERNELS["gather_roots"](
            arrays, {"start": 0, "stop": 40, "m": 100}
        )
        parts = [
            KERNELS["gather_roots"](arrays, {"start": s, "stop": e, "m": 100})
            for s, e in [(0, 13), (13, 26), (26, 40)]
        ]
        np.testing.assert_array_equal(
            np.concatenate([f for f, _ in parts]), whole_flat
        )
        np.testing.assert_array_equal(
            np.concatenate([c for _, c in parts]), whole_cnts
        )

    def test_empty_roots(self):
        flat, cnts = KERNELS["gather_roots"](
            {
                "csr_off": np.zeros(1, np.int64),
                "csr_edge": np.zeros(0, np.int64),
                "ev": np.zeros((0, 2), np.int64),
                "done": np.zeros(0, np.uint8),
                "roots": np.zeros(0, np.int64),
            },
            {"start": 0, "stop": 0, "m": 0},
        )
        assert flat.size == 0 and cnts.size == 0


# --------------------------------------------------------------------- #
# The persistent pool (forks real processes)
# --------------------------------------------------------------------- #
pool_tests = pytest.mark.parallel


@pool_tests
class TestPersistentPool:
    def test_fork_once_pids_stable(self):
        pool = PersistentPool(2)
        try:
            pids = pool.worker_pids()
            assert len(pids) == 2 and all(p for p in pids)
            pool.ping()
            pool.ping()
            assert pool.worker_pids() == pids  # no respawn between calls
        finally:
            pool.shutdown()

    def test_task_results_in_order(self):
        pool = PersistentPool(2)
        try:
            out = pool.run_tasks(
                [("ping", None, {"value": i}) for i in range(7)]
            )
            assert out == list(range(7))
        finally:
            pool.shutdown()

    def test_kernel_error_propagates_with_traceback(self):
        pool = PersistentPool(2)
        try:
            with pytest.raises(EngineError, match="no_such_kernel"):
                pool.run_tasks([("no_such_kernel", None, {})])
            # The pool survives a failed task.
            pool.ping()
        finally:
            pool.shutdown()

    def test_shm_segment_reaches_workers(self):
        pool = PersistentPool(2)
        seg = make_segment(
            "roots", np.arange(10, dtype=np.int64), use_shm=True
        )
        try:
            pool.publish(1, seg)
            # gather on a trivial graph: 10 edges, no incidences.
            for name, arr in {
                "csr_off": np.zeros(1, np.int64),
                "csr_edge": np.zeros(0, np.int64),
                "ev": np.full((10, 2), -1, np.int64),
                "done": np.zeros(10, np.uint8),
            }.items():
                pool.publish(1, make_segment(name, arr, use_shm=False))
            out = pool.run_tasks(
                [("gather_roots", 1, {"start": 0, "stop": 10, "m": 10})]
            )
            flat, cnts = out[0]
            assert flat.size == 0 and cnts.tolist() == [0] * 10
        finally:
            seg.close()
            pool.shutdown()


# --------------------------------------------------------------------- #
# Engine lifecycle
# --------------------------------------------------------------------- #
class TestEngineLifecycle:
    def test_session_gate(self):
        eng = Engine(EngineConfig(mode="shm", workers=1, min_session_edges=512))
        ve = {0: [0], 1: [0]}
        assert eng.open_matcher_session(ve, [(0, 1)], 1) is None
        eng.close()
        assert not eng.enabled

    def test_workers_one_never_forks(self):
        eng = Engine(EngineConfig(mode="shm", workers=1, min_session_edges=0))
        sess = eng.open_matcher_session({0: [0], 1: [0]}, [(0, 1)], 1)
        assert sess is not None
        assert sess.gather([0]) == [[]]
        assert eng.pool is None  # in-master kernels only
        sess.close()
        eng.close()

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            EngineConfig(mode="turbo")

    @pool_tests
    def test_calibrate_returns_measurements(self):
        eng = Engine(
            EngineConfig(
                mode="shm", workers=2, min_session_edges=0,
                scheduler=SchedulerConfig(),
            )
        )
        try:
            meas = eng.calibrate()
            assert meas is not None
            assert meas["roundtrip_seconds"] > 0
            assert eng.scheduler.config.cutoff_work >= 256.0
        finally:
            eng.close()

    @pool_tests
    def test_worker_crash_falls_back_to_serial(self):
        from repro.hypergraph.edge import Edge
        from repro.static_matching.parallel_greedy import parallel_greedy_match

        rng = np.random.default_rng(11)
        pairs = sorted(
            {(min(u, v), max(u, v)) for u, v in rng.integers(0, 40, (200, 2)) if u != v}
        )
        edges = [Edge(i, (int(a), int(b))) for i, (a, b) in enumerate(pairs)]
        eng = Engine(
            EngineConfig(
                mode="shm", workers=2, min_session_edges=0,
                scheduler=SchedulerConfig(
                    cutoff_work=0.0, min_items_per_task=1,
                    task_overhead_work=0.0, margin=10.0, assume_cores=8,
                ),
            )
        )
        try:
            # Start the pool, then kill a worker behind the engine's back.
            eng.calibrate()
            eng.pool._procs[0].terminate()
            eng.pool._procs[0].join()
            result = parallel_greedy_match(
                edges, rng=np.random.default_rng(5), engine=eng
            )
            # The run completes serially and matches the no-engine run.
            baseline = parallel_greedy_match(edges, rng=np.random.default_rng(5))
            assert [m.edge.eid for m in result.matches] == [
                m.edge.eid for m in baseline.matches
            ]
            assert eng.stats["fallbacks"] >= 1
            assert not eng.can_parallelize
        finally:
            eng.close()
