"""Unit tests for the work-depth cost ledger."""

import pytest
from hypothesis import given, strategies as st

from repro.parallel.ledger import Cost, Ledger, NullLedger, log2ceil, parallel_for


class TestLog2Ceil:
    def test_small_values_floor_at_one(self):
        assert log2ceil(0) == 1
        assert log2ceil(1) == 1
        assert log2ceil(2) == 1

    def test_powers_of_two(self):
        assert log2ceil(4) == 2
        assert log2ceil(8) == 3
        assert log2ceil(1024) == 10

    def test_between_powers_rounds_up(self):
        assert log2ceil(5) == 3
        assert log2ceil(1000) == 10

    @given(st.integers(3, 10**9))
    def test_bracketing(self, n):
        k = log2ceil(n)
        assert 2 ** (k - 1) < n <= 2**k


class TestCost:
    def test_sequential_composition_adds(self):
        c = Cost(3, 2).then(Cost(5, 7))
        assert c == Cost(8, 9)

    def test_parallel_composition_maxes_depth(self):
        c = Cost.par([Cost(3, 2), Cost(5, 7), Cost(1, 1)])
        assert c == Cost(9, 7)

    def test_par_empty(self):
        assert Cost.par([]) == Cost(0, 0)

    def test_add_operator(self):
        assert Cost(1, 1) + Cost(2, 3) == Cost(3, 4)

    def test_frozen(self):
        with pytest.raises(Exception):
            Cost(1, 1).work = 5


class TestLedgerCharging:
    def test_charge_accumulates_work_and_depth(self, ledger):
        ledger.charge(work=5, depth=2)
        ledger.charge(work=3, depth=1)
        assert ledger.work == 8
        assert ledger.depth == 3

    def test_negative_charge_rejected(self, ledger):
        with pytest.raises(ValueError):
            ledger.charge(work=-1)
        with pytest.raises(ValueError):
            ledger.charge(depth=-1)

    def test_tags_accumulate(self, ledger):
        ledger.charge(work=5, tag="a")
        ledger.charge(work=3, tag="a")
        ledger.charge(work=2, tag="b")
        assert ledger.by_tag == {"a": 8, "b": 2}

    def test_charge_cost(self, ledger):
        ledger.charge_cost(Cost(4, 2), tag="x")
        assert ledger.work == 4
        assert ledger.depth == 2
        assert ledger.by_tag["x"] == 4

    def test_reset(self, ledger):
        ledger.charge(work=5, depth=5, tag="a")
        ledger.reset()
        assert ledger.work == 0
        assert ledger.depth == 0
        assert ledger.by_tag == {}


class TestParallelRegions:
    def test_region_contributes_max_branch_depth(self, ledger):
        with ledger.parallel() as region:
            for d in (3, 7, 2):
                with region.branch():
                    ledger.charge(work=1, depth=d)
        assert ledger.work == 3
        assert ledger.depth == 7

    def test_empty_region_adds_no_depth(self, ledger):
        with ledger.parallel():
            pass
        assert ledger.depth == 0

    def test_nested_regions(self, ledger):
        # outer: two branches; first branch contains an inner region.
        with ledger.parallel() as outer:
            with outer.branch():
                ledger.charge(depth=1)
                with ledger.parallel() as inner:
                    for d in (5, 2):
                        with inner.branch():
                            ledger.charge(depth=d)
                ledger.charge(depth=1)  # 1 + 5 + 1 = 7
            with outer.branch():
                ledger.charge(depth=4)
        assert ledger.depth == 7

    def test_sequential_then_parallel(self, ledger):
        ledger.charge(depth=10)
        with ledger.parallel() as region:
            with region.branch():
                ledger.charge(depth=3)
        assert ledger.depth == 13

    def test_branch_after_close_rejected(self, ledger):
        with ledger.parallel() as region:
            pass
        with pytest.raises(RuntimeError):
            with region.branch():
                pass

    def test_reset_inside_region_rejected(self, ledger):
        with pytest.raises(RuntimeError):
            with ledger.parallel() as region:
                with region.branch():
                    ledger.reset()


class TestMeasure:
    def test_measure_captures_delta(self, ledger):
        ledger.charge(work=100, depth=50)
        with ledger.measure() as span:
            ledger.charge(work=7, depth=3)
        assert span.cost == Cost(7, 3)

    def test_measure_sees_parallel_depth(self, ledger):
        with ledger.measure() as span:
            with ledger.parallel() as region:
                for d in (2, 9):
                    with region.branch():
                        ledger.charge(work=1, depth=d)
        assert span.cost == Cost(2, 9)

    def test_nested_measures(self, ledger):
        with ledger.measure() as outer:
            ledger.charge(work=1, depth=1)
            with ledger.measure() as inner:
                ledger.charge(work=2, depth=2)
        assert inner.cost == Cost(2, 2)
        assert outer.cost == Cost(3, 3)


class TestParallelFor:
    def test_results_in_order(self, ledger):
        out = parallel_for(ledger, [1, 2, 3], lambda x: x * 10)
        assert out == [10, 20, 30]

    def test_depth_is_max_not_sum(self, ledger):
        def body(d):
            ledger.charge(work=1, depth=d)

        parallel_for(ledger, [4, 9, 1], body)
        assert ledger.depth == 9
        assert ledger.work == 3

    def test_per_item_depth(self, ledger):
        parallel_for(ledger, range(100), lambda x: None, per_item_depth=2)
        assert ledger.depth == 2

    def test_empty(self, ledger):
        assert parallel_for(ledger, [], lambda x: x) == []
        assert ledger.depth == 0


class TestNullLedger:
    def test_discards_charges(self):
        nl = NullLedger()
        nl.charge(work=100, depth=100, tag="x")
        assert nl.work == 0
        assert nl.depth == 0

    def test_still_validates(self):
        with pytest.raises(ValueError):
            NullLedger().charge(work=-1)

    def test_supports_regions(self):
        nl = NullLedger()
        with nl.parallel() as region:
            with region.branch():
                nl.charge(depth=5)
        assert nl.depth == 0


@given(st.lists(st.tuples(st.integers(0, 50), st.integers(0, 50)), min_size=1, max_size=20))
def test_property_sequential_charges_sum(charges):
    led = Ledger()
    for w, d in charges:
        led.charge(work=w, depth=d)
    assert led.work == sum(w for w, _ in charges)
    assert led.depth == sum(d for _, d in charges)


@given(st.lists(st.integers(0, 50), min_size=1, max_size=20))
def test_property_parallel_depth_is_max(depths):
    led = Ledger()
    with led.parallel() as region:
        for d in depths:
            with region.branch():
                led.charge(depth=d)
    assert led.depth == max(depths)
