"""Unit tests for the parallel primitives and their cost charges."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.parallel.ledger import Ledger, log2ceil
from repro.parallel import primitives as P


class TestPmap:
    def test_maps(self, ledger):
        assert P.pmap(ledger, [1, 2, 3], lambda x: x + 1) == [2, 3, 4]

    def test_cost(self, ledger):
        P.pmap(ledger, list(range(16)), lambda x: x)
        assert ledger.work == 16
        assert ledger.depth == 4

    def test_empty(self, ledger):
        assert P.pmap(ledger, [], lambda x: x) == []


class TestPfilter:
    def test_keeps_order(self, ledger):
        out = P.pfilter(ledger, [5, 2, 9, 4], lambda x: x % 2 == 0)
        assert out == [2, 4]

    def test_cost(self, ledger):
        P.pfilter(ledger, list(range(32)), lambda x: True)
        assert ledger.work == 32
        assert ledger.depth == 5


class TestPreduce:
    def test_reduces(self, ledger):
        assert P.preduce(ledger, [1, 2, 3, 4], lambda a, b: a + b) == 10

    def test_identity_on_empty(self, ledger):
        assert P.preduce(ledger, [], lambda a, b: a + b, identity=0) == 0

    def test_empty_without_identity_raises(self, ledger):
        with pytest.raises(ValueError):
            P.preduce(ledger, [], lambda a, b: a + b)

    def test_max(self, ledger):
        assert P.preduce(ledger, [3, 7, 1], max) == 7


class TestScan:
    def test_exclusive_prefix_sums(self, ledger):
        out = P.scan(ledger, [1, 2, 3, 4])
        assert list(out) == [0, 1, 3, 6, 10]

    def test_empty(self, ledger):
        out = P.scan(ledger, [])
        assert list(out) == [0]

    def test_total_in_last_slot(self, ledger):
        out = P.scan(ledger, [5, 5, 5])
        assert out[-1] == 15

    @given(st.lists(st.integers(-100, 100), max_size=50))
    def test_property_matches_cumsum(self, values):
        led = Ledger()
        out = P.scan(led, values)
        assert out[0] == 0
        for i in range(len(values)):
            assert out[i + 1] == out[i] + values[i]


class TestPflatten:
    def test_flattens(self, ledger):
        assert P.pflatten(ledger, [[1], [], [2, 3]]) == [1, 2, 3]

    def test_cost_proportional_to_total(self, ledger):
        P.pflatten(ledger, [[0] * 10, [0] * 22])
        assert ledger.work == 32


class TestPackIndex:
    def test_indices(self, ledger):
        assert P.pack_index(ledger, [True, False, True, True]) == [0, 2, 3]

    def test_all_false(self, ledger):
        assert P.pack_index(ledger, [False] * 5) == []


class TestPzipWith:
    def test_combines(self, ledger):
        assert P.pzip_with(ledger, [1, 2], [10, 20], lambda a, b: a + b) == [11, 22]

    def test_length_mismatch(self, ledger):
        with pytest.raises(ValueError):
            P.pzip_with(ledger, [1], [1, 2], lambda a, b: a)


class TestPcount:
    def test_counts(self, ledger):
        assert P.pcount(ledger, range(10), lambda x: x < 3) == 3


@given(st.lists(st.integers(), max_size=64))
def test_property_primitives_charge_logarithmic_depth(values):
    """Every O(n)-work primitive charges at most log2ceil(n)+1 depth."""
    n = len(values)
    led = Ledger()
    P.pmap(led, values, lambda x: x)
    assert led.depth <= log2ceil(max(n, 2)) + 1
