"""Tests for the optional process-pool executor."""

import pytest

from repro.parallel.pool_exec import chunk_ranges, chunked, default_workers, pool_map


def _square(x):
    return x * x


def _raise_on_7(x):
    if x == 7:
        raise ValueError("boom at 7")
    return x


class TestChunkRanges:
    def test_balanced(self):
        assert chunk_ranges(10, 3) == [(0, 4), (4, 7), (7, 10)]

    def test_covers_exactly(self):
        for n in (1, 2, 7, 10, 31, 100):
            for k in (1, 2, 3, 8, 200):
                ranges = chunk_ranges(n, k)
                assert ranges[0][0] == 0 and ranges[-1][1] == n
                # contiguous, non-empty, balanced within one item
                sizes = [e - s for s, e in ranges]
                assert all(sz >= 1 for sz in sizes)
                assert max(sizes) - min(sizes) <= 1
                assert all(
                    ranges[i][1] == ranges[i + 1][0] for i in range(len(ranges) - 1)
                )

    def test_more_chunks_than_items(self):
        assert chunk_ranges(2, 5) == [(0, 1), (1, 2)]

    def test_empty(self):
        assert chunk_ranges(0, 4) == []

    def test_invalid(self):
        with pytest.raises(ValueError):
            chunk_ranges(1, 0)


class TestChunked:
    def test_balanced(self):
        chunks = chunked(list(range(10)), 3)
        assert [len(c) for c in chunks] == [4, 3, 3]
        assert sum(chunks, []) == list(range(10))

    def test_more_chunks_than_items(self):
        chunks = chunked([1, 2], 5)
        assert chunks == [[1], [2]]

    def test_empty(self):
        assert chunked([], 4) == []

    def test_invalid(self):
        with pytest.raises(ValueError):
            chunked([1], 0)

    def test_matches_ranges(self):
        items = list(range(23))
        assert chunked(items, 4) == [
            items[s:e] for s, e in chunk_ranges(len(items), 4)
        ]


class TestPoolMap:
    def test_serial_fallback_small_input(self):
        assert pool_map(_square, [1, 2, 3], workers=4) == [1, 4, 9]

    def test_serial_one_worker(self):
        out = pool_map(_square, list(range(200)), workers=1)
        assert out == [x * x for x in range(200)]

    def test_parallel_matches_serial(self):
        items = list(range(300))
        out = pool_map(_square, items, workers=2, serial_threshold=10)
        assert out == [x * x for x in items]

    def test_order_preserved(self):
        items = list(range(299, -1, -1))
        out = pool_map(_square, items, workers=2, serial_threshold=10)
        assert out == [x * x for x in items]

    def test_order_preserved_uneven_chunks(self):
        # 101 items over 3 workers -> chunk sizes 34/34/33; the merged
        # output must still be in input order.
        items = list(range(100, -1, -1))
        out = pool_map(_square, items, workers=3, serial_threshold=10)
        assert out == [x * x for x in items]

    def test_serial_threshold_boundary(self):
        # len(items) == serial_threshold runs through the pool path;
        # one fewer stays serial.  Both must produce identical output.
        items = list(range(64))
        at = pool_map(_square, items, workers=2, serial_threshold=64)
        below = pool_map(_square, items[:-1], workers=2, serial_threshold=64)
        assert at == [x * x for x in items]
        assert below == [x * x for x in items[:-1]]

    def test_workers_zero_uses_default(self):
        out = pool_map(_square, list(range(10)), workers=0)
        assert out == [x * x for x in range(10)]

    def test_more_workers_than_chunks(self):
        # chunked() clamps to at most one chunk per item; extra workers
        # simply idle and must not perturb the output.
        items = list(range(12))
        out = pool_map(_square, items, workers=4, serial_threshold=6)
        assert out == [x * x for x in items]

    def test_exception_propagates_serial(self):
        with pytest.raises(ValueError, match="boom at 7"):
            pool_map(_raise_on_7, list(range(10)), workers=1)

    def test_exception_propagates_parallel(self):
        with pytest.raises(ValueError, match="boom at 7"):
            pool_map(_raise_on_7, list(range(100)), workers=2, serial_threshold=10)


def test_default_workers_positive():
    assert default_workers() >= 1
