"""Tests for the optional process-pool executor."""

import pytest

from repro.parallel.pool_exec import chunked, default_workers, pool_map


def _square(x):
    return x * x


class TestChunked:
    def test_balanced(self):
        chunks = chunked(list(range(10)), 3)
        assert [len(c) for c in chunks] == [4, 3, 3]
        assert sum(chunks, []) == list(range(10))

    def test_more_chunks_than_items(self):
        chunks = chunked([1, 2], 5)
        assert chunks == [[1], [2]]

    def test_empty(self):
        assert chunked([], 4) == []

    def test_invalid(self):
        with pytest.raises(ValueError):
            chunked([1], 0)


class TestPoolMap:
    def test_serial_fallback_small_input(self):
        assert pool_map(_square, [1, 2, 3], workers=4) == [1, 4, 9]

    def test_serial_one_worker(self):
        out = pool_map(_square, list(range(200)), workers=1)
        assert out == [x * x for x in range(200)]

    def test_parallel_matches_serial(self):
        items = list(range(300))
        out = pool_map(_square, items, workers=2, serial_threshold=10)
        assert out == [x * x for x in items]

    def test_order_preserved(self):
        items = list(range(299, -1, -1))
        out = pool_map(_square, items, workers=2, serial_threshold=10)
        assert out == [x * x for x in items]


def test_default_workers_positive():
    assert default_workers() >= 1
