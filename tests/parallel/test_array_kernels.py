"""Array kernels vs their pure-Python originals: same answers, same charges.

The vectorized dynamic fast path (docs/hotpath.md) rests on one rule:
every numpy kernel must be *observationally identical* to the dict/list
original it replaces — element-for-element output in the same order, and
the exact same ledger charges (work, depth, per-tag totals).  These
property tests enforce the rule for

* the ``*_arrays`` semisort family (``semisort_arrays``,
  ``group_by_arrays``, ``sum_by_arrays``, ``count_by_arrays``) against
  ``semisort``/``group_by``/``sum_by``/``count_by``,
* the ndarray branch of ``remove_duplicates`` against its list branch,
* the ndarray short-circuits of ``pmap``/``pfilter``/``pack_index``, and
* :class:`~repro.parallel.frames.BatchFrame` column construction against
  per-edge attribute reads.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, strategies as st

from repro.hypergraph.edge import Edge
from repro.parallel.frames import BatchFrame
from repro.parallel.ledger import Ledger
from repro.parallel.primitives import pack_index, pfilter, pmap
from repro.parallel.semisort import (
    count_by,
    count_by_arrays,
    group_by,
    group_by_arrays,
    remove_duplicates,
    semisort,
    semisort_arrays,
    sum_by,
    sum_by_arrays,
)

# Small key ranges force collisions; values are distinct enough to expose
# any reordering within a key group.
keys_values = st.lists(
    st.tuples(st.integers(0, 9), st.integers(-50, 50)), max_size=80
)


def _columns(pairs):
    ks = np.array([k for k, _ in pairs], dtype=np.int64)
    vs = np.array([v for _, v in pairs], dtype=np.int64)
    return ks, vs


def _ledger_state(led: Ledger):
    return led.work, led.depth, dict(led.by_tag)


class TestSemisortArrays:
    @given(keys_values)
    def test_matches_dict_original_and_charges(self, pairs):
        led_a, led_b = Ledger(), Ledger()
        expect = semisort(led_a, pairs)
        ks, vs = _columns(pairs)
        out_k, out_v = semisort_arrays(led_b, ks, vs)
        assert list(zip(out_k.tolist(), out_v.tolist())) == expect
        assert _ledger_state(led_a) == _ledger_state(led_b)

    def test_empty(self):
        led = Ledger()
        out_k, out_v = semisort_arrays(
            led, np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
        )
        assert out_k.size == 0 and out_v.size == 0


class TestGroupByArrays:
    @given(keys_values)
    def test_csr_matches_dict_original_and_charges(self, pairs):
        led_a, led_b = Ledger(), Ledger()
        expect = group_by(led_a, pairs)
        ks, vs = _columns(pairs)
        uniq, offsets, grouped = group_by_arrays(led_b, ks, vs)
        got = [
            (int(uniq[g]), grouped[offsets[g]:offsets[g + 1]].tolist())
            for g in range(uniq.size)
        ]
        assert got == expect
        assert _ledger_state(led_a) == _ledger_state(led_b)

    def test_empty_offsets_sentinel(self):
        led = Ledger()
        uniq, offsets, grouped = group_by_arrays(
            led, np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
        )
        assert uniq.size == 0 and grouped.size == 0
        assert offsets.tolist() == [0]


class TestSumByArrays:
    @given(keys_values)
    def test_matches_dict_original_and_charges(self, pairs):
        led_a, led_b = Ledger(), Ledger()
        expect = sum_by(led_a, pairs)
        ks, vs = _columns(pairs)
        out_k, out_s = sum_by_arrays(led_b, ks, vs)
        assert list(zip(out_k.tolist(), out_s.tolist())) == expect
        assert _ledger_state(led_a) == _ledger_state(led_b)


class TestCountByArrays:
    @given(st.lists(st.integers(0, 9), max_size=80))
    def test_matches_original_and_charges(self, keys):
        led_a, led_b = Ledger(), Ledger()
        expect = count_by(led_a, keys)
        out_k, out_c = count_by_arrays(led_b, np.array(keys, dtype=np.int64))
        assert list(zip(out_k.tolist(), out_c.tolist())) == expect
        assert _ledger_state(led_a) == _ledger_state(led_b)


class TestRemoveDuplicatesArray:
    @given(st.lists(st.integers(0, 20), max_size=80))
    def test_ndarray_branch_matches_list_branch(self, items):
        led_a, led_b = Ledger(), Ledger()
        expect = remove_duplicates(led_a, items)
        out = remove_duplicates(led_b, np.array(items, dtype=np.int64))
        assert isinstance(out, np.ndarray)
        assert out.tolist() == expect
        assert _ledger_state(led_a) == _ledger_state(led_b)


class TestPrimitiveShortCircuits:
    @given(st.lists(st.integers(-100, 100), max_size=60))
    def test_pmap_array(self, xs):
        led_a, led_b = Ledger(), Ledger()
        expect = pmap(led_a, xs, lambda x: -x)
        out = pmap(led_b, np.array(xs, dtype=np.int64), np.negative)
        assert isinstance(out, np.ndarray)
        assert out.tolist() == expect
        assert _ledger_state(led_a) == _ledger_state(led_b)

    @given(st.lists(st.integers(-100, 100), max_size=60))
    def test_pfilter_array_predicate_and_mask(self, xs):
        led_a, led_b, led_c = Ledger(), Ledger(), Ledger()
        expect = pfilter(led_a, xs, lambda x: x > 0)
        arr = np.array(xs, dtype=np.int64)
        by_pred = pfilter(led_b, arr, lambda a: a > 0)
        by_mask = pfilter(led_c, arr, arr > 0)
        assert by_pred.tolist() == expect
        assert by_mask.tolist() == expect
        assert (
            _ledger_state(led_a) == _ledger_state(led_b) == _ledger_state(led_c)
        )

    @given(st.lists(st.booleans(), max_size=60))
    def test_pack_index_array(self, flags):
        led_a, led_b = Ledger(), Ledger()
        expect = pack_index(led_a, flags)
        out = pack_index(led_b, np.array(flags, dtype=bool))
        assert isinstance(out, np.ndarray)
        assert out.tolist() == expect
        assert _ledger_state(led_a) == _ledger_state(led_b)


class TestBatchFrame:
    @given(st.lists(
        st.lists(st.integers(0, 30), min_size=1, max_size=3, unique=True),
        max_size=25,
    ))
    def test_columns_match_edges(self, raw):
        edges = [Edge(i, vs) for i, vs in enumerate(raw)]
        frame = BatchFrame.from_edges(edges)
        assert len(frame) == len(edges)
        assert frame.eids.tolist() == [e.eid for e in edges]
        assert frame.cards.tolist() == [e.cardinality for e in edges]
        assert frame.total_cardinality == sum(e.cardinality for e in edges)
        for i, e in enumerate(edges):
            assert frame.vertices_of(i).tolist() == list(e.vertices)

    def test_select_preserves_order_and_csr(self):
        edges = [Edge(i, [i, i + 1, i + 2][: 1 + i % 3]) for i in range(10)]
        frame = BatchFrame.from_edges(edges)
        sub = frame.select(np.array([7, 2, 5]))
        assert [e.eid for e in sub.edges] == [7, 2, 5]
        for j, i in enumerate([7, 2, 5]):
            assert sub.vertices_of(j).tolist() == list(edges[i].vertices)
        mask = np.zeros(10, dtype=bool)
        mask[[1, 4]] = True
        sub2 = frame.select(mask)
        assert sub2.eids.tolist() == [1, 4]

    def test_intern_roundtrip(self):
        edges = [Edge(0, [5, 9]), Edge(1, [9, 3]), Edge(2, [3, 5])]
        frame = BatchFrame.from_edges(edges)
        uniq, inv = frame.intern()
        assert uniq.tolist() == [3, 5, 9]
        assert np.array_equal(uniq[inv], frame.vflat)
