"""Unit tests for the Brent-bound simulated machine."""

import pytest

from repro.parallel.ledger import Cost
from repro.parallel.machine import (
    Machine,
    aggregate_costs,
    brent_time,
    critical_batch,
    parallelism,
    speedup,
    speedup_curve,
)


class TestBrent:
    def test_single_processor_is_work_plus_depth(self):
        assert brent_time(Cost(100, 10), 1) == 110

    def test_many_processors_floor_at_depth(self):
        assert brent_time(Cost(100, 10), 10**9) == pytest.approx(10, rel=1e-3)

    def test_invalid_processors(self):
        with pytest.raises(ValueError):
            brent_time(Cost(1, 1), 0)

    def test_monotone_in_processors(self):
        c = Cost(1000, 5)
        times = [brent_time(c, p) for p in (1, 2, 4, 8, 16)]
        assert times == sorted(times, reverse=True)


class TestSpeedup:
    def test_speedup_bounded_by_parallelism(self):
        c = Cost(1000, 10)
        for p in (2, 8, 64, 4096):
            assert speedup(c, p) <= parallelism(c) + 1

    def test_speedup_at_one_is_one(self):
        assert speedup(Cost(50, 5), 1) == 1.0

    def test_curve(self):
        curve = speedup_curve(Cost(1000, 10), [1, 2, 4])
        assert set(curve) == {1, 2, 4}
        assert curve[1] == 1.0
        assert curve[4] > curve[2] > curve[1]


class TestParallelism:
    def test_ratio(self):
        assert parallelism(Cost(100, 4)) == 25

    def test_zero_depth(self):
        assert parallelism(Cost(100, 0)) == float("inf")
        assert parallelism(Cost(0, 0)) == 1.0


class TestMachine:
    def test_time(self):
        assert Machine(16).time(Cost(1600, 10)) == 110.0

    def test_invalid(self):
        with pytest.raises(ValueError):
            Machine(0)

    def test_speedup(self):
        assert Machine(2).speedup(Cost(100, 0)) == pytest.approx(2.0)


class TestAggregation:
    def test_aggregate_sequential(self):
        total = aggregate_costs([Cost(10, 1), Cost(20, 2)])
        assert total == Cost(30, 3)

    def test_aggregate_empty(self):
        assert aggregate_costs([]) == Cost(0, 0)

    def test_critical_batch(self):
        costs = [Cost(1, 5), Cost(1, 9), Cost(1, 2)]
        assert critical_batch(costs) == 1

    def test_critical_batch_empty(self):
        with pytest.raises(ValueError):
            critical_batch([])
