"""Unit and property tests for findNext (doubling + binary search)."""

import pytest
from hypothesis import given, strategies as st

from repro.parallel.findnext import find_next, find_next_in
from repro.parallel.ledger import Ledger, log2ceil


class TestFindNext:
    def test_start_satisfies(self, ledger):
        assert find_next(ledger, 0, 10, lambda j: True) == 0

    def test_finds_first_hit(self, ledger):
        flags = [False, False, False, True, False, True]
        assert find_next(ledger, 0, len(flags), lambda j: flags[j]) == 3

    def test_respects_start(self, ledger):
        flags = [True, False, False, True]
        assert find_next(ledger, 1, len(flags), lambda j: flags[j]) == 3

    def test_no_hit_returns_length(self, ledger):
        assert find_next(ledger, 0, 8, lambda j: False) == 8

    def test_start_at_length(self, ledger):
        assert find_next(ledger, 5, 5, lambda j: True) == 5

    def test_start_past_length(self, ledger):
        assert find_next(ledger, 9, 5, lambda j: True) == 5

    def test_negative_start_rejected(self, ledger):
        with pytest.raises(ValueError):
            find_next(ledger, -1, 5, lambda j: True)

    def test_hit_at_last_index(self, ledger):
        n = 37
        assert find_next(ledger, 0, n, lambda j: j == n - 1) == n - 1


class TestFindNextIn:
    def test_over_items(self, ledger):
        items = ["a", "b", "x", "c", "x"]
        assert find_next_in(ledger, 0, items, lambda s: s == "x") == 2

    def test_no_match(self, ledger):
        assert find_next_in(ledger, 0, [1, 2], lambda x: x > 5) == 2


class TestCostModel:
    def test_work_proportional_to_distance(self):
        """Work for a hit at distance d is O(d) — here within 4d + O(1)."""
        for d in (1, 5, 17, 100, 900):
            led = Ledger()
            find_next(led, 0, 2000, lambda j, d=d: j >= d)
            assert led.work <= 4 * (d + 1) + 8, f"distance {d}: work {led.work}"

    def test_depth_logarithmic_in_distance(self):
        for d in (1, 10, 100, 1000):
            led = Ledger()
            find_next(led, 0, 5000, lambda j, d=d: j >= d)
            assert led.depth <= 3 * log2ceil(d + 2) + 4, f"distance {d}: depth {led.depth}"

    def test_miss_costs_linear_in_range(self):
        led = Ledger()
        find_next(led, 0, 256, lambda j: False)
        assert led.work <= 3 * 256


@given(
    st.lists(st.booleans(), min_size=1, max_size=200),
    st.integers(0, 220),
)
def test_property_matches_linear_scan(flags, start):
    led = Ledger()
    got = find_next(led, start, len(flags), lambda j: flags[j])
    expect = next((j for j in range(min(start, len(flags)), len(flags)) if flags[j]), len(flags))
    assert got == expect
