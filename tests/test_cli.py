"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.workloads.generators import erdos_renyi_edges
from repro.workloads.io import read_stream, write_edge_list


class TestGen:
    def test_gen_er(self, tmp_path, capsys):
        out = str(tmp_path / "s.txt")
        assert main(["gen", "--kind", "er", "--n", "20", "--m", "50",
                     "--batch", "10", "--seed", "1", "--out", out]) == 0
        stream = read_stream(out)
        assert sum(b.size for b in stream) == 100  # 50 inserts + 50 deletes
        assert "wrote" in capsys.readouterr().out

    def test_gen_star(self, tmp_path):
        out = str(tmp_path / "star.txt")
        assert main(["gen", "--kind", "star", "--n", "30", "--batch", "5",
                     "--out", out]) == 0
        stream = read_stream(out)
        inserts = [b for b in stream if b.kind == "insert"]
        assert sum(b.size for b in inserts) == 29

    def test_gen_hyper(self, tmp_path):
        out = str(tmp_path / "h.txt")
        assert main(["gen", "--kind", "hyper", "--n", "20", "--m", "40",
                     "--rank", "3", "--batch", "8", "--out", out]) == 0
        stream = read_stream(out)
        assert all(e.cardinality == 3 for b in stream if b.kind == "insert"
                   for e in b.edges)

    def test_gen_window(self, tmp_path):
        out = str(tmp_path / "w.txt")
        assert main(["gen", "--kind", "er", "--n", "30", "--m", "100",
                     "--batch", "20", "--window", "40", "--out", out]) == 0
        kinds = [b.kind for b in read_stream(out)]
        assert "delete" in kinds[:-1]  # interleaved, not just at the end

    @pytest.mark.parametrize("adv", ["random", "fifo", "lifo", "vertex"])
    def test_gen_adversaries(self, tmp_path, adv):
        out = str(tmp_path / f"{adv}.txt")
        assert main(["gen", "--kind", "er", "--n", "15", "--m", "30",
                     "--batch", "10", "--adversary", adv, "--out", out]) == 0


class TestRun:
    @pytest.fixture
    def stream_file(self, tmp_path):
        out = str(tmp_path / "s.txt")
        main(["gen", "--kind", "er", "--n", "25", "--m", "80", "--batch", "20",
              "--seed", "3", "--out", out])
        return out

    @pytest.mark.parametrize("algo", ["paper", "gt", "static", "naive", "random-mate", "bgs"])
    def test_run_all_algorithms(self, stream_file, algo, capsys):
        assert main(["run", "--stream", stream_file, "--algo", algo]) == 0
        out = capsys.readouterr().out
        assert "work/update" in out

    def test_run_check_mode(self, stream_file, capsys):
        assert main(["run", "--stream", stream_file, "--algo", "paper", "--check"]) == 0
        assert "maximality verified" in capsys.readouterr().out

    def test_run_prints_profile(self, stream_file, capsys):
        main(["run", "--stream", stream_file, "--algo", "paper"])
        assert "work profile" in capsys.readouterr().out


class TestStatic:
    def test_static(self, tmp_path, capsys):
        path = str(tmp_path / "g.txt")
        write_edge_list(path, erdos_renyi_edges(20, 60, np.random.default_rng(0)))
        assert main(["static", "--edges", path, "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "matching size" in out and "rounds" in out


def _fastpath_counts(out):
    """Parse the ``fast path: vector_batches=... object_batches=...`` line."""
    lines = [l for l in out.splitlines() if l.startswith("fast path:")]
    assert lines, f"no fast-path summary in output:\n{out}"
    pairs = lines[0].replace("fast path:", "").split()
    return {k: int(v) for k, v in (kv.split("=") for kv in pairs)}


class TestNoVectorized:
    """--no-vectorized must actually force the object pipeline: zero
    vector batches AND zero kernel-fallback attempts — the fast path was
    never even tried, every batch went straight through object code."""

    @pytest.fixture
    def stream_file(self, tmp_path):
        out = str(tmp_path / "s.txt")
        main(["gen", "--kind", "er", "--n", "25", "--m", "80", "--batch", "20",
              "--seed", "3", "--out", out])
        return out

    def test_run_no_vectorized_forces_object_pipeline(self, stream_file, capsys):
        assert main(["run", "--stream", stream_file, "--algo", "paper",
                     "--no-vectorized"]) == 0
        vs = _fastpath_counts(capsys.readouterr().out)
        assert vs["vector_batches"] == 0
        assert vs["kernel_fallbacks"] == 0
        assert vs["object_batches"] > 0  # the batches really ran

    def test_run_default_attempts_vector_pipeline(self, stream_file, capsys):
        assert main(["run", "--stream", stream_file, "--algo", "paper"]) == 0
        vs = _fastpath_counts(capsys.readouterr().out)
        # The vectorized pipeline engages (or consciously falls back per
        # batch); it is never silently absent like with --no-vectorized.
        assert vs["vector_batches"] + vs["kernel_fallbacks"] > 0

    def test_serve_no_vectorized_forces_object_pipeline(self, stream_file,
                                                        tmp_path, capsys):
        assert main(["serve", "--journal", str(tmp_path / "j"), "--stream",
                     stream_file, "--no-vectorized", "--no-fsync"]) == 0
        out = capsys.readouterr().out
        assert "served" in out
        vs = _fastpath_counts(out)
        assert vs["vector_batches"] == 0
        assert vs["kernel_fallbacks"] == 0
        assert vs["object_batches"] > 0

    def test_serve_default_attempts_vector_pipeline(self, stream_file,
                                                    tmp_path, capsys):
        assert main(["serve", "--journal", str(tmp_path / "j"), "--stream",
                     stream_file, "--no-fsync"]) == 0
        vs = _fastpath_counts(capsys.readouterr().out)
        assert vs["vector_batches"] + vs["kernel_fallbacks"] > 0


class TestServeSharded:
    @pytest.fixture
    def stream_file(self, tmp_path):
        out = str(tmp_path / "s.txt")
        main(["gen", "--kind", "er", "--n", "30", "--m", "60", "--batch", "15",
              "--seed", "5", "--out", out])
        return out

    @pytest.mark.parametrize("shards", [1, 2])
    def test_serve_sharded_journal_and_recover(self, stream_file, tmp_path,
                                               shards, capsys):
        root = str(tmp_path / f"svc{shards}")
        assert main(["serve", "--journal", root, "--stream", stream_file,
                     "--shards", str(shards), "--shard-transport", "inline",
                     "--no-fsync", "--check"]) == 0
        out = capsys.readouterr().out
        assert f"across {shards} shards" in out
        assert f"shards: {shards} (inline)" in out
        assert "merged ledger work:" in out
        assert "merged maximality verified" in out

        # Recovery autodetects the sharded root from its manifest.
        assert main(["serve", "--recover", root, "--certify", "--no-fsync"]) == 0
        out = capsys.readouterr().out
        assert f"recovered" in out and "sharded root" in out
        assert "certified against uninterrupted sharded oracle" in out

    def test_serve_sharded_recover_and_continue(self, stream_file, tmp_path, capsys):
        root = str(tmp_path / "svc")
        assert main(["serve", "--journal", root, "--stream", stream_file,
                     "--shards", "2", "--shard-transport", "inline",
                     "--no-fsync"]) == 0
        capsys.readouterr()
        more = str(tmp_path / "more.txt")
        main(["gen", "--kind", "er", "--n", "30", "--m", "40", "--batch", "10",
              "--seed", "77", "--out", more])
        capsys.readouterr()
        assert main(["serve", "--recover", root, "--stream", more,
                     "--no-fsync"]) == 0
        out = capsys.readouterr().out
        assert "continued with" in out
        assert "shards: 2" in out

    def test_serve_sharded_requires_stream_with_journal(self, tmp_path, capsys):
        assert main(["serve", "--journal", str(tmp_path / "j"),
                     "--shards", "2"]) == 2
        assert "requires --stream" in capsys.readouterr().out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_algo_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--stream", "x", "--algo", "bogus"])

    def test_serve_shard_flags_parse(self):
        args = build_parser().parse_args(
            ["serve", "--journal", "d", "--stream", "s",
             "--shards", "4", "--shard-transport", "process"]
        )
        assert args.shards == 4 and args.shard_transport == "process"

    def test_serve_shards_default_off(self):
        args = build_parser().parse_args(["serve", "--recover", "d"])
        assert args.shards is None and args.shard_transport is None

    def test_serve_rejects_unknown_shard_transport(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["serve", "--journal", "d", "--shard-transport", "telepathy"]
            )

    def test_run_no_vectorized_flag_parses(self):
        args = build_parser().parse_args(
            ["run", "--stream", "s", "--no-vectorized"]
        )
        assert args.no_vectorized is True
