"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.workloads.generators import erdos_renyi_edges
from repro.workloads.io import read_stream, write_edge_list


class TestGen:
    def test_gen_er(self, tmp_path, capsys):
        out = str(tmp_path / "s.txt")
        assert main(["gen", "--kind", "er", "--n", "20", "--m", "50",
                     "--batch", "10", "--seed", "1", "--out", out]) == 0
        stream = read_stream(out)
        assert sum(b.size for b in stream) == 100  # 50 inserts + 50 deletes
        assert "wrote" in capsys.readouterr().out

    def test_gen_star(self, tmp_path):
        out = str(tmp_path / "star.txt")
        assert main(["gen", "--kind", "star", "--n", "30", "--batch", "5",
                     "--out", out]) == 0
        stream = read_stream(out)
        inserts = [b for b in stream if b.kind == "insert"]
        assert sum(b.size for b in inserts) == 29

    def test_gen_hyper(self, tmp_path):
        out = str(tmp_path / "h.txt")
        assert main(["gen", "--kind", "hyper", "--n", "20", "--m", "40",
                     "--rank", "3", "--batch", "8", "--out", out]) == 0
        stream = read_stream(out)
        assert all(e.cardinality == 3 for b in stream if b.kind == "insert"
                   for e in b.edges)

    def test_gen_window(self, tmp_path):
        out = str(tmp_path / "w.txt")
        assert main(["gen", "--kind", "er", "--n", "30", "--m", "100",
                     "--batch", "20", "--window", "40", "--out", out]) == 0
        kinds = [b.kind for b in read_stream(out)]
        assert "delete" in kinds[:-1]  # interleaved, not just at the end

    @pytest.mark.parametrize("adv", ["random", "fifo", "lifo", "vertex"])
    def test_gen_adversaries(self, tmp_path, adv):
        out = str(tmp_path / f"{adv}.txt")
        assert main(["gen", "--kind", "er", "--n", "15", "--m", "30",
                     "--batch", "10", "--adversary", adv, "--out", out]) == 0


class TestRun:
    @pytest.fixture
    def stream_file(self, tmp_path):
        out = str(tmp_path / "s.txt")
        main(["gen", "--kind", "er", "--n", "25", "--m", "80", "--batch", "20",
              "--seed", "3", "--out", out])
        return out

    @pytest.mark.parametrize("algo", ["paper", "gt", "static", "naive", "random-mate", "bgs"])
    def test_run_all_algorithms(self, stream_file, algo, capsys):
        assert main(["run", "--stream", stream_file, "--algo", algo]) == 0
        out = capsys.readouterr().out
        assert "work/update" in out

    def test_run_check_mode(self, stream_file, capsys):
        assert main(["run", "--stream", stream_file, "--algo", "paper", "--check"]) == 0
        assert "maximality verified" in capsys.readouterr().out

    def test_run_prints_profile(self, stream_file, capsys):
        main(["run", "--stream", stream_file, "--algo", "paper"])
        assert "work profile" in capsys.readouterr().out


class TestStatic:
    def test_static(self, tmp_path, capsys):
        path = str(tmp_path / "g.txt")
        write_edge_list(path, erdos_renyi_edges(20, 60, np.random.default_rng(0)))
        assert main(["static", "--edges", path, "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "matching size" in out and "rounds" in out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_algo_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--stream", "x", "--algo", "bogus"])
