"""Hypothesis property tests for the metrics registry.

Four contracts: counter monotonicity, histogram bucket/count/sum
consistency, label-set isolation, and Prometheus exposition round-trip.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import MetricsRegistry, parse_prometheus_text, render_prometheus

pytestmark = pytest.mark.obs

finite_nonneg = st.floats(
    min_value=0, max_value=1e12, allow_nan=False, allow_infinity=False
)
finite = st.floats(
    min_value=-1e12, max_value=1e12, allow_nan=False, allow_infinity=False
)


@given(st.lists(finite_nonneg, max_size=50))
def test_counter_monotonic(increments):
    reg = MetricsRegistry()
    c = reg.counter("c_total")
    seen = [c.value()]
    for amt in increments:
        c.inc(amt)
        seen.append(c.value())
    assert all(b >= a for a, b in zip(seen, seen[1:]))
    assert seen[-1] == pytest.approx(sum(increments), abs=1e-6)


@given(
    st.lists(
        st.floats(min_value=0, max_value=1e9, allow_nan=False, allow_infinity=False),
        max_size=60,
    ),
    st.lists(
        st.floats(min_value=0.001, max_value=1e6, allow_nan=False, allow_infinity=False),
        min_size=1, max_size=8, unique=True,
    ),
)
def test_histogram_consistency(observations, raw_bounds):
    bounds = sorted(raw_bounds)
    reg = MetricsRegistry()
    h = reg.histogram("h", buckets=bounds).labels()
    for v in observations:
        h.observe(v)
    # count and sum agree with the raw observations
    assert h.count == len(observations)
    assert h.sum == pytest.approx(sum(observations), rel=1e-9, abs=1e-9)
    # per-bucket counts match an independent recomputation
    expected_counts = [0] * (len(bounds) + 1)
    for v in observations:
        idx = next((i for i, b in enumerate(bounds) if v <= b), len(bounds))
        expected_counts[idx] += 1
    assert h.counts == expected_counts
    # cumulative form is non-decreasing and ends at the total count
    cum = h.cumulative()
    values = [c for _, c in cum]
    assert values == sorted(values)
    assert values[-1] == len(observations)
    assert cum[-1][0] == math.inf


@given(
    st.dictionaries(
        st.sampled_from(["a", "b", "c", "d"]),
        st.lists(finite_nonneg, max_size=10),
        max_size=4,
    )
)
def test_label_set_isolation(per_label):
    reg = MetricsRegistry()
    fam = reg.counter("ops_total", "ops", ("tag",))
    # interleave increments across label sets round-robin
    schedule = [
        (label, amt) for label, amts in sorted(per_label.items()) for amt in amts
    ]
    for label, amt in schedule:
        fam.labels(tag=label).inc(amt)
    for label, amts in per_label.items():
        assert fam.value(tag=label) == pytest.approx(sum(amts), abs=1e-6)
    assert fam.value(tag="never_touched") == 0.0


label_values = st.text(
    alphabet=st.characters(
        codec="utf-8", exclude_categories=("Cs",), max_codepoint=0x2FF
    ),
    max_size=12,
)


@given(
    counters=st.dictionaries(label_values, finite_nonneg, max_size=5),
    gauge_value=finite,
    observations=st.lists(finite_nonneg, max_size=20),
)
@settings(max_examples=60)
def test_prometheus_round_trip(counters, gauge_value, observations):
    reg = MetricsRegistry()
    fam = reg.counter("repro_rt_total", "round trip", ("tag",))
    for tag, amt in counters.items():
        fam.labels(tag=tag).inc(amt)
    reg.gauge("repro_rt_gauge", "a gauge").set(gauge_value)
    h = reg.histogram("repro_rt_hist", buckets=(1.0, 10.0)).labels()
    for v in observations:
        h.observe(v)

    parsed = parse_prometheus_text(render_prometheus(reg))

    for tag, amt in counters.items():
        key = ("repro_rt_total", frozenset([("tag", tag)]))
        assert parsed[key] == pytest.approx(amt, abs=1e-9)
    assert parsed[("repro_rt_gauge", frozenset())] == pytest.approx(gauge_value)
    assert parsed[("repro_rt_hist_count", frozenset())] == len(observations)
    assert parsed[("repro_rt_hist_sum", frozenset())] == pytest.approx(
        sum(observations), rel=1e-9, abs=1e-9
    )
    inf_key = ("repro_rt_hist_bucket", frozenset([("le", "+Inf")]))
    assert parsed[inf_key] == len(observations)
