"""Tracer unit tests plus batch-lifecycle span integration via the runner."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import DynamicMatching
from repro.durability import DurabilityManager
from repro.obs import Observer, Tracer, default_observer, reset_default_observer
from repro.testing.faults import random_batches
from repro.workloads import FifoAdversary, erdos_renyi_edges, insert_then_delete_stream
from repro.workloads.runner import run_stream

pytestmark = pytest.mark.obs


class TestTracer:
    def test_nesting_and_parents(self):
        tr = Tracer()
        with tr.span("outer") as outer:
            with tr.span("inner") as inner:
                assert inner.parent_id == outer.span_id
        names = [s.name for s in tr.finished]
        assert names == ["inner", "outer"]  # children close first

    def test_events_attach_to_open_span(self):
        tr = Tracer()
        with tr.span("batch") as sp:
            tr.event("insert.begin")
            tr.event("insert.registered")
        assert [name for name, _t in sp.events] == [
            "insert.begin",
            "insert.registered",
        ]
        assert all(t >= 0.0 for _name, t in sp.events)
        tr.event("orphan")  # no open span: dropped, not an error
        assert all(
            "orphan" not in [name for name, _t in s.events] for s in tr.finished
        )

    def test_attrs_and_error_flag(self):
        tr = Tracer()
        with pytest.raises(RuntimeError):
            with tr.span("batch", kind="insert") as sp:
                sp.set(size=4)
                raise RuntimeError("boom")
        (done,) = tr.finished
        assert done.attrs["kind"] == "insert"
        assert done.attrs["size"] == 4
        assert done.attrs["error"] == "RuntimeError"

    def test_durations_non_negative(self):
        tr = Tracer()
        with tr.span("a"):
            pass
        assert tr.finished[0].dur >= 0.0

    def test_finished_ring_bounded(self):
        tr = Tracer(keep=4)
        for i in range(10):
            with tr.span(f"s{i}"):
                pass
        assert len(tr.finished) == 4
        assert [s.name for s in tr.finished] == ["s6", "s7", "s8", "s9"]

    def test_finished_spans_filters_by_name(self):
        tr = Tracer()
        with tr.span("batch"):
            pass
        with tr.span("checkpoint"):
            pass
        with tr.span("batch"):
            pass
        assert len(tr.finished_spans("batch")) == 2


def _stream(seed=13, n=30, m=90, batch_size=10):
    edges = erdos_renyi_edges(n, m, rng=np.random.default_rng(seed))
    return insert_then_delete_stream(edges, batch_size, adversary=FifoAdversary())


class TestRunnerSpans:
    def test_private_observer_batch_spans(self):
        obs = Observer()
        dm = DynamicMatching(rank=2, seed=1, backend="array")
        stream = _stream()
        records = run_stream(dm, stream, observer=obs)
        batches = obs.tracer.finished_spans("batch")
        assert len(batches) == len(stream) == len(records)
        for i, sp in enumerate(batches):
            assert sp.attrs["index"] == i
            assert sp.attrs["kind"] in ("insert", "delete")
            assert sp.attrs["work"] >= 0.0
        # nested lifecycle spans were emitted under each batch, and the
        # algorithm's phase hooks surfaced as events on the innermost
        # (apply) span
        applies = obs.tracer.finished_spans("apply")
        assert len(applies) == len(stream)
        for sp, batch in zip(applies, stream):
            names = [name for name, _t in sp.events]
            assert f"{batch.kind}.begin" in names

    def test_default_observer_used_when_unspecified(self):
        reset_default_observer()
        try:
            dm = DynamicMatching(rank=2, seed=2, backend="array")
            run_stream(dm, _stream(seed=2))
            obs = default_observer()
            assert obs.tracer.finished_spans("batch")
            assert obs.registry.get("repro_batches_total") is not None
        finally:
            reset_default_observer()

    def test_observer_false_emits_nothing(self):
        reset_default_observer()
        try:
            dm = DynamicMatching(rank=2, seed=3, backend="array")
            run_stream(dm, _stream(seed=3), observer=False)
            assert not default_observer().tracer.finished
        finally:
            reset_default_observer()

    def test_detach_restores_phase_hook(self):
        dm = DynamicMatching(rank=2, seed=4, backend="array")
        marks = []
        dm.set_phase_hook(marks.append)
        prev_hook = dm.phase_hook
        run_stream(dm, _stream(seed=4), observer=Observer())
        assert dm.phase_hook is prev_hook  # runner detached its observer
        assert marks  # and the pre-existing hook kept firing throughout

    def test_durability_spans(self, tmp_path):
        obs = Observer()
        rng = np.random.default_rng(5)
        batches = random_batches(rng, 8)
        dm = DynamicMatching(rank=3, seed=5, backend="array")
        with DurabilityManager.create(str(tmp_path), dm, checkpoint_every=3) as mgr:
            run_stream(dm, batches, durability=mgr, observer=obs)
        assert len(obs.tracer.finished_spans("journal.append")) == len(batches)
        assert len(obs.tracer.finished_spans("checkpoint")) == len(batches)
        written = [
            sp.attrs.get("written") for sp in obs.tracer.finished_spans("checkpoint")
        ]
        assert any(written)  # checkpoint_every=3 over 8 batches wrote at least one
        assert obs.registry.get("repro_journal_batches_total").value() == len(batches)
        assert obs.registry.get("repro_checkpoints_total").value() == sum(
            1 for w in written if w
        )
