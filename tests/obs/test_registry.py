"""Unit tests for the metrics registry primitives."""

from __future__ import annotations

import math

import pytest

from repro.obs import MetricError, MetricsRegistry

pytestmark = pytest.mark.obs


@pytest.fixture
def reg() -> MetricsRegistry:
    return MetricsRegistry()


class TestCounter:
    def test_starts_at_zero_and_accumulates(self, reg):
        c = reg.counter("c_total", "a counter")
        assert c.value() == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value() == 3.5

    def test_negative_increment_rejected(self, reg):
        c = reg.counter("c_total")
        with pytest.raises(MetricError):
            c.inc(-1)
        assert c.value() == 0.0

    def test_non_finite_rejected(self, reg):
        c = reg.counter("c_total")
        for bad in (math.nan, math.inf, -math.inf):
            with pytest.raises(MetricError):
                c.inc(bad)


class TestGauge:
    def test_set_inc_dec(self, reg):
        g = reg.gauge("g")
        g.set(10)
        g.inc(5)
        g.dec(3)
        assert g.value() == 12.0

    def test_can_go_negative(self, reg):
        g = reg.gauge("g")
        g.dec(4)
        assert g.value() == -4.0


class TestHistogram:
    def test_bucketing(self, reg):
        h = reg.histogram("h", buckets=(1.0, 10.0, 100.0)).labels()
        for v in (0.5, 1.0, 5.0, 50.0, 500.0):
            h.observe(v)
        # boundaries are inclusive upper bounds
        assert h.counts == [2, 1, 1, 1]
        assert h.count == 5
        assert h.sum == pytest.approx(556.5)
        cum = h.cumulative()
        assert cum == [(1.0, 2), (10.0, 3), (100.0, 4), (math.inf, 5)]

    def test_bad_buckets_rejected(self, reg):
        with pytest.raises(MetricError):
            reg.histogram("h1", buckets=(1.0, 1.0))
        with pytest.raises(MetricError):
            reg.histogram("h2", buckets=())
        with pytest.raises(MetricError):
            reg.histogram("h3", buckets=(1.0, math.inf))

    def test_nan_observation_rejected(self, reg):
        h = reg.histogram("h", buckets=(1.0,))
        with pytest.raises(MetricError):
            h.observe(math.nan)


class TestLabels:
    def test_label_sets_isolated(self, reg):
        c = reg.counter("ops_total", "ops", ("kind",))
        c.labels(kind="insert").inc(3)
        c.labels(kind="delete").inc(7)
        assert c.value(kind="insert") == 3.0
        assert c.value(kind="delete") == 7.0
        assert c.value(kind="other") == 0.0

    def test_label_mismatch_rejected(self, reg):
        c = reg.counter("ops_total", "ops", ("kind",))
        with pytest.raises(MetricError):
            c.labels()
        with pytest.raises(MetricError):
            c.labels(kind="x", extra="y")
        with pytest.raises(MetricError):
            c.inc()  # labeled family has no default child

    def test_invalid_names_rejected(self, reg):
        with pytest.raises(MetricError):
            reg.counter("2bad")
        with pytest.raises(MetricError):
            reg.counter("ok_total", labelnames=("bad-label",))
        with pytest.raises(MetricError):
            reg.counter("ok2_total", labelnames=("__reserved",))
        with pytest.raises(MetricError):
            reg.counter("ok3_total", labelnames=("a", "a"))


class TestRegistry:
    def test_reregistration_idempotent(self, reg):
        a = reg.counter("x_total", "help", ("k",))
        b = reg.counter("x_total", "other help", ("k",))
        assert a is b

    def test_schema_mismatch_rejected(self, reg):
        reg.counter("x_total", labelnames=("k",))
        with pytest.raises(MetricError):
            reg.gauge("x_total")
        with pytest.raises(MetricError):
            reg.counter("x_total", labelnames=("other",))

    def test_families_sorted(self, reg):
        reg.counter("b_total")
        reg.gauge("a")
        assert [f.name for f in reg.families()] == ["a", "b_total"]

    def test_as_dict_snapshot(self, reg):
        reg.counter("c_total", labelnames=("k",)).labels(k="v").inc(2)
        reg.gauge("g").set(1)
        snap = reg.as_dict()
        assert snap["c_total"] == {"k=v": 2.0}
        assert snap["g"] == {"": 1.0}
