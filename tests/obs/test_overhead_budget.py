"""Overhead budget: default observation costs <= 5% on the E1 path.

Timing assertions are inherently noisy, so this is gated behind
``REPRO_OBS_BENCH=1`` (the CI obs job sets it; plain tier-1 runs skip).
The measurement interleaves observed and unobserved repeats and compares
min-of-N, the standard noise-robust statistic for "how fast can this
go" — a regression that pushes the *minimum* over budget is real.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.core import DynamicMatching
from repro.obs import Observer
from repro.workloads import FifoAdversary, erdos_renyi_edges, insert_then_delete_stream
from repro.workloads.runner import run_stream

pytestmark = [
    pytest.mark.obs,
    pytest.mark.skipif(
        os.environ.get("REPRO_OBS_BENCH", "0") in ("", "0"),
        reason="timing assertion; enable with REPRO_OBS_BENCH=1",
    ),
]

#: Budget from the issue's acceptance criteria: observation may cost at
#: most 5% wall-clock on the E1 smoke workload, plus a tiny absolute
#: epsilon so microsecond-scale timer noise can't fail a sub-ms delta.
BUDGET_RATIO = 1.05
EPSILON_S = 2e-3

REPEATS = 7


def _stream():
    edges = erdos_renyi_edges(200, 600, rng=np.random.default_rng(42))
    return insert_then_delete_stream(edges, 50, adversary=FifoAdversary())


def _one_run(observed: bool) -> float:
    dm = DynamicMatching(rank=2, seed=42, backend="array")
    stream = _stream()
    observer = Observer() if observed else False
    t0 = time.perf_counter()
    run_stream(dm, stream, observer=observer)
    return time.perf_counter() - t0


def test_observation_overhead_within_budget():
    on, off = [], []
    _one_run(True), _one_run(False)  # warm caches outside the measurement
    for _ in range(REPEATS):  # interleave so drift hits both arms equally
        on.append(_one_run(True))
        off.append(_one_run(False))
    best_on, best_off = min(on), min(off)
    assert best_on <= best_off * BUDGET_RATIO + EPSILON_S, (
        f"observation overhead over budget: observed {best_on:.4f}s vs "
        f"plain {best_off:.4f}s "
        f"({(best_on / best_off - 1) * 100:.1f}% > {(BUDGET_RATIO - 1) * 100:.0f}%)"
    )
