"""Differential tests: observability must not perturb the algorithms.

The same workload is run with the observer attached and detached; ledger
totals, per-tag work, matchings, and recovery certificates must be
bit-identical.  This is the zero-perturbation contract that lets the
telemetry run in production without invalidating the paper's accounting.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.profiles import tag_work, work_profile
from repro.core import DynamicMatching
from repro.durability import DurabilityManager, recover
from repro.obs import Observer
from repro.testing import random_workout
from repro.testing.faults import random_batches
from repro.workloads import (
    FifoAdversary,
    erdos_renyi_edges,
    insert_then_delete_stream,
)
from repro.workloads.runner import run_stream

pytestmark = pytest.mark.obs


def _ledger_fingerprint(dm: DynamicMatching):
    return (dm.ledger.work, dm.ledger.depth, dict(dm.ledger.by_tag))


def _run_workout(seed: int, observed: bool):
    created = []

    def make_algo():
        dm = DynamicMatching(rank=3, seed=seed, backend="array")
        if observed:
            obs = Observer(bridge=True)
            obs.attach_matching(dm)
            dm._test_obs = obs  # keep it (and its hooks) alive for the run
        created.append(dm)
        return dm

    random_workout(make_algo, seed=seed, steps=25, certify_after_each_batch=True)
    (dm,) = created
    return dm


@pytest.mark.parametrize("seed", [3, 11])
def test_workout_obs_on_off_identical(seed):
    plain = _run_workout(seed, observed=False)
    observed = _run_workout(seed, observed=True)
    assert _ledger_fingerprint(plain) == _ledger_fingerprint(observed)
    assert plain.matched_ids() == observed.matched_ids()
    assert {e.eid for e in plain.structure.all_edges()} == {
        e.eid for e in observed.structure.all_edges()
    }


def test_workout_bridge_mirrors_by_tag_exactly(seed=5):
    dm = _run_workout(seed, observed=True)
    mirrored = tag_work(dm._test_obs.registry)
    assert mirrored == dict(dm.ledger.by_tag)
    # and the rolled-up phase profile agrees between the two sources
    assert work_profile(dm._test_obs.registry) == work_profile(dm.ledger)


def _stream(seed: int):
    edges = erdos_renyi_edges(40, 140, rng=np.random.default_rng(seed))
    return insert_then_delete_stream(edges, batch_size=12, adversary=FifoAdversary())


@pytest.mark.parametrize("backend", ["array", "dict"])
def test_run_stream_obs_on_off_identical(backend):
    results = {}
    for observed in (False, True):
        dm = DynamicMatching(rank=3, seed=9, backend=backend)
        obs = Observer(bridge=True) if observed else False
        run_stream(dm, _stream(seed=9), observer=obs)
        results[observed] = (_ledger_fingerprint(dm), dm.matched_ids())
    assert results[False] == results[True]


def _durable_run(directory, seed: int, observed: bool):
    rng = np.random.default_rng(seed)
    batches = random_batches(rng, 14)
    dm = DynamicMatching(rank=3, seed=seed, backend="array")
    obs = Observer(bridge=True) if observed else None
    detach = obs.attach_matching(dm) if obs else None
    with DurabilityManager.create(
        str(directory), dm, checkpoint_every=4
    ) as mgr:
        if obs:
            obs.attach_durability(mgr)
        for batch in batches:
            mgr.log_batch(batch)
            if batch.kind == "insert":
                dm.insert_edges(list(batch.edges))
            else:
                dm.delete_edges(list(batch.eids))
            mgr.note_applied(dm)
    if detach:
        detach()
    return dm


def test_recovery_certificates_identical(tmp_path):
    plain_dir, obs_dir = tmp_path / "plain", tmp_path / "observed"
    _durable_run(plain_dir, seed=21, observed=False)
    _durable_run(obs_dir, seed=21, observed=True)

    plain = recover(str(plain_dir), do_certify=True)
    observed = recover(str(obs_dir), do_certify=True)
    assert plain.certified and observed.certified
    assert plain.report == observed.report
    assert plain.report["work"] == observed.report["work"]
    assert plain.dm.matched_ids() == observed.dm.matched_ids()
