"""Exporter tests: the /metrics HTTP endpoint, the JSONL event log, and
their CLI wiring (``run --events/--metrics-port``)."""

from __future__ import annotations

import json
import urllib.request

import numpy as np
import pytest

from repro.core import DynamicMatching
from repro.obs import (
    JsonlEventLog,
    MetricsRegistry,
    Observer,
    open_spans,
    parse_prometheus_text,
    read_events,
    start_metrics_server,
)
from repro.workloads import FifoAdversary, erdos_renyi_edges, insert_then_delete_stream
from repro.workloads.runner import run_stream

pytestmark = pytest.mark.obs


def _scrape(port: int, path: str = "/metrics") -> str:
    with urllib.request.urlopen(f"http://127.0.0.1:{port}{path}", timeout=5) as r:
        assert r.status == 200
        assert r.headers["Content-Type"].startswith("text/plain")
        return r.read().decode("utf-8")


class TestHttpServer:
    def test_serves_live_registry(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_demo_total", "demo")
        server = start_metrics_server(reg, port=0)
        try:
            port = server.server_address[1]
            c.inc(3)
            parsed = parse_prometheus_text(_scrape(port))
            assert parsed[("repro_demo_total", frozenset())] == 3.0
            c.inc(2)  # the endpoint reads live state, not a snapshot
            parsed = parse_prometheus_text(_scrape(port, path="/"))
            assert parsed[("repro_demo_total", frozenset())] == 5.0
        finally:
            server.shutdown()

    def test_unknown_path_404(self):
        server = start_metrics_server(MetricsRegistry(), port=0)
        try:
            port = server.server_address[1]
            with pytest.raises(urllib.error.HTTPError) as exc:
                _scrape(port, path="/nope")
            assert exc.value.code == 404
        finally:
            server.shutdown()


class TestJsonlEventLog:
    def test_span_open_then_span_records(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        obs = Observer()
        with JsonlEventLog(path) as log:
            log.attach(obs.tracer)
            with obs.tracer.span("batch", kind="insert"):
                pass
        events = read_events(path)
        assert [e["type"] for e in events] == ["span_open", "span"]
        assert events[0]["name"] == events[1]["name"] == "batch"
        assert events[0]["span_id"] == events[1]["span_id"]
        assert "dur" not in events[0] and events[1]["dur"] >= 0.0
        assert not open_spans(events)

    def test_every_line_is_self_contained_json(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        obs = Observer()
        obs.open_event_log(path)
        dm = DynamicMatching(rank=2, seed=1, backend="array")
        edges = erdos_renyi_edges(20, 50, rng=np.random.default_rng(1))
        stream = insert_then_delete_stream(edges, 10, adversary=FifoAdversary())
        run_stream(dm, stream, observer=obs)
        obs.close()
        with open(path, encoding="utf-8") as fh:
            lines = [line for line in fh.read().splitlines() if line]
        assert lines
        for line in lines:
            json.loads(line)  # raises if any line is torn mid-run

    def test_reader_skips_corrupt_lines(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write('{"type": "span", "name": "a", "span_id": 1}\n')
            fh.write('{"type": "span_open", "name":\n')  # torn tail
            fh.write("not json at all\n")
            fh.write('{"type": "span", "name": "b", "span_id": 2}\n')
        events = read_events(path)
        assert [e["name"] for e in events] == ["a", "b"]


class TestCliWiring:
    @pytest.fixture
    def stream_file(self, tmp_path):
        from repro.cli import main

        out = str(tmp_path / "stream.txt")
        assert main(["gen", "--kind", "er", "--n", "20", "--m", "40",
                     "--batch", "8", "--seed", "3", "--out", out]) == 0
        return out

    def test_run_with_events_log(self, tmp_path, stream_file, capsys):
        from repro.cli import main

        events = str(tmp_path / "run-events.jsonl")
        assert main(["run", "--stream", stream_file, "--seed", "3",
                     "--events", events]) == 0
        recs = read_events(events)
        batch_spans = [r for r in recs if r.get("type") == "span"
                       and r.get("name") == "batch"]
        assert batch_spans and all("work" in r["attrs"] for r in batch_spans)
        capsys.readouterr()

    def test_run_with_metrics_port(self, stream_file, capsys):
        from repro.cli import main

        assert main(["run", "--stream", stream_file, "--seed", "3",
                     "--metrics-port", "0"]) == 0
        out = capsys.readouterr().out
        assert "metrics: http://127.0.0.1:" in out

    def test_trace_from_events(self, tmp_path, stream_file, capsys):
        from repro.analysis.trace import RunTrace
        from repro.cli import main

        events = str(tmp_path / "ev.jsonl")
        assert main(["run", "--stream", stream_file, "--seed", "3",
                     "--events", events]) == 0
        capsys.readouterr()
        trace = RunTrace.from_events(events)
        assert trace.points
        assert trace.totals()["updates"] == sum(p.size for p in trace.points)
