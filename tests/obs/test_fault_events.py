"""Crash forensics: the event log must survive a mid-batch crash intact.

A simulated crash (:class:`SimulatedCrash` is a BaseException) fires
inside the apply phase while the observer's JSONL event log is attached.
Afterward the log must parse line by line, the span state must be
recoverable, and durability recovery must certify — a torn span never
poisons ``serve --recover``.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core import DynamicMatching
from repro.durability import DurabilityManager, recover
from repro.obs import JsonlEventLog, Observer, open_spans, read_events
from repro.testing.faults import CrashInjector, SimulatedCrash, random_batches
from repro.workloads.runner import run_stream

pytestmark = [pytest.mark.obs, pytest.mark.fault]


def _crash_run(tmp_path, crash_at=30, seed=31):
    """Run a durable observed stream until the injector fires.

    Returns (events_path, durability_dir, injector, dm).
    """
    events_path = str(tmp_path / "events.jsonl")
    dur_dir = tmp_path / "dur"
    dur_dir.mkdir()
    rng = np.random.default_rng(seed)
    batches = random_batches(rng, 12)
    dm = DynamicMatching(rank=3, seed=seed, backend="array")
    injector = CrashInjector(at=crash_at)
    dm.set_phase_hook(injector)
    obs = Observer(bridge=True)
    obs.open_event_log(events_path)
    mgr = DurabilityManager.create(str(dur_dir), dm, checkpoint_every=4)
    try:
        with pytest.raises(SimulatedCrash):
            run_stream(dm, batches, durability=mgr, observer=obs)
    finally:
        mgr.close()
        obs.close()
    assert injector.fired, "crash point never reached; lower crash_at"
    return events_path, dur_dir, injector, dm


def test_crash_leaves_parseable_log_and_certified_recovery(tmp_path):
    events_path, dur_dir, injector, dm = _crash_run(tmp_path)

    # every line on disk is a self-contained JSON object
    with open(events_path, encoding="utf-8") as fh:
        lines = [ln for ln in fh.read().splitlines() if ln]
    assert lines
    for ln in lines:
        json.loads(ln)

    # the interrupted spans were flushed with the crash recorded on them
    events = read_events(events_path)
    errored = [
        e for e in events
        if e.get("type") == "span" and e.get("attrs", {}).get("error")
    ]
    assert errored, "crash did not mark any span"
    assert all(e["attrs"]["error"] == "SimulatedCrash" for e in errored)
    # the phase event that crashed is on the record, for forensics
    crash_event = injector.events[-1]
    assert any(
        crash_event in [name for name, _t in e.get("events", [])]
        for e in errored
    )

    # the batch that crashed opened a span but produced no finished batch
    opens = [e for e in events if e["type"] == "span_open" and e["name"] == "batch"]
    finished_batches = [
        e for e in events if e["type"] == "span" and e["name"] == "batch"
        and "work" in e.get("attrs", {})
    ]
    assert len(opens) == len(finished_batches) + 1

    # the crash detached nothing it shouldn't: the injector hook is back
    assert dm.phase_hook is injector

    # durability is unpoisoned: recovery replays the journal and certifies
    res = recover(str(dur_dir), do_certify=True)
    assert res.certified
    assert res.report["batches"] >= len(finished_batches)


def test_unfinished_span_recoverable_from_log(tmp_path):
    """Model true process death: a span opens, the process dies before
    the finish record is written.  ``open_spans`` finds it."""
    path = str(tmp_path / "events.jsonl")
    obs = Observer()
    log = JsonlEventLog(path).attach(obs.tracer)
    handle = obs.tracer.span("batch", kind="insert", index=0)
    assert handle.span.name == "batch"  # opened (span_open is on disk)
    with obs.tracer.span("apply"):
        pass
    # power cut here: the batch span never finishes, the log just stops
    log.close()
    events = read_events(path)
    stuck = open_spans(events)
    assert [e["name"] for e in stuck] == ["batch"]
    assert stuck[0]["attrs"]["kind"] == "insert"


def test_torn_tail_in_event_log_is_skipped(tmp_path):
    events_path, dur_dir, _injector, _dm = _crash_run(tmp_path, seed=37)
    before = read_events(events_path)
    # tear the tail mid-record, as a crash during a write would
    with open(events_path, "r+", encoding="utf-8") as fh:
        data = fh.read()
        fh.seek(0)
        fh.truncate()
        fh.write(data + '{"type": "span", "name": "batch", "attrs": {"wor')
    after = read_events(events_path)
    assert after == before  # torn record skipped, nothing else lost
    # and the durability side still certifies
    assert recover(str(dur_dir), do_certify=True).certified
