"""Unit and property tests for the mutable Hypergraph."""

import pytest
from hypothesis import given

from repro.hypergraph.edge import Edge
from repro.hypergraph.hypergraph import Hypergraph

from tests.conftest import edge_lists


@pytest.fixture
def triangle():
    return Hypergraph([Edge(0, (1, 2)), Edge(1, (2, 3)), Edge(2, (1, 3))])


class TestMutation:
    def test_add_and_len(self, triangle):
        assert len(triangle) == 3

    def test_duplicate_id_rejected(self, triangle):
        with pytest.raises(KeyError):
            triangle.add_edge(Edge(0, (5, 6)))

    def test_remove_returns_edge(self, triangle):
        e = triangle.remove_edge(1)
        assert e.vertices == (2, 3)
        assert 1 not in triangle

    def test_remove_absent_raises(self, triangle):
        with pytest.raises(KeyError):
            triangle.remove_edge(99)

    def test_remove_cleans_incidence(self):
        h = Hypergraph([Edge(0, (1, 2))])
        h.remove_edge(0)
        assert h.num_vertices == 0
        assert h.incident_edge_ids(1) == set()

    def test_clear(self, triangle):
        triangle.clear()
        assert len(triangle) == 0 and triangle.num_vertices == 0

    def test_bulk_add_remove(self):
        h = Hypergraph()
        h.add_edges([Edge(i, (i, i + 1)) for i in range(5)])
        removed = h.remove_edges([0, 2, 4])
        assert [e.eid for e in removed] == [0, 2, 4]
        assert len(h) == 2


class TestQueries:
    def test_degree(self, triangle):
        assert triangle.degree(1) == 2
        assert triangle.degree(99) == 0

    def test_neighbors(self, triangle):
        nbrs = {e.eid for e in triangle.neighbors(triangle.edge(0))}
        assert nbrs == {1, 2}

    def test_neighbors_no_duplicates(self):
        # edge 1 shares BOTH vertices with edge 0: must appear once.
        h = Hypergraph([Edge(0, (1, 2)), Edge(1, (1, 2))])
        assert len(h.neighbors(h.edge(0))) == 1

    def test_neighbor_ids(self, triangle):
        assert triangle.neighbor_ids(triangle.edge(1)) == {0, 2}

    def test_incident_edge_ids(self, triangle):
        assert triangle.incident_edge_ids(2) == {0, 1}

    def test_get(self, triangle):
        assert triangle.get(0).eid == 0
        assert triangle.get(42) is None

    def test_iteration(self, triangle):
        assert {e.eid for e in triangle} == {0, 1, 2}


class TestAggregates:
    def test_rank(self):
        h = Hypergraph([Edge(0, (1, 2)), Edge(1, (1, 2, 3, 4))])
        assert h.rank == 4

    def test_rank_empty(self):
        assert Hypergraph().rank == 0

    def test_total_cardinality(self):
        h = Hypergraph([Edge(0, (1, 2)), Edge(1, (1, 2, 3))])
        assert h.total_cardinality == 5

    def test_num_vertices_counts_touched_only(self):
        h = Hypergraph([Edge(0, (4, 9))])
        assert h.num_vertices == 2


class TestMatchingPredicates:
    def test_is_matching_true(self, triangle):
        assert triangle.is_matching([0])
        assert triangle.is_matching([])

    def test_is_matching_conflict(self, triangle):
        assert not triangle.is_matching([0, 1])  # share vertex 2

    def test_is_matching_missing_edge(self, triangle):
        assert not triangle.is_matching([99])

    def test_is_maximal_matching(self, triangle):
        # any single edge of a triangle is maximal
        for eid in (0, 1, 2):
            assert triangle.is_maximal_matching([eid])

    def test_not_maximal_when_free_edge_exists(self):
        h = Hypergraph([Edge(0, (1, 2)), Edge(1, (3, 4))])
        assert not h.is_maximal_matching([0])
        assert h.is_maximal_matching([0, 1])

    def test_empty_matching_on_empty_graph_is_maximal(self):
        assert Hypergraph().is_maximal_matching([])


class TestCopy:
    def test_copy_independent(self, triangle):
        c = triangle.copy()
        c.remove_edge(0)
        assert 0 in triangle and 0 not in c

    def test_copy_preserves_incidence(self, triangle):
        c = triangle.copy()
        assert c.incident_edge_ids(2) == triangle.incident_edge_ids(2)


@given(edge_lists(max_rank=3))
def test_property_incidence_index_consistent(edges):
    h = Hypergraph(edges)
    # every edge is indexed under each of its vertices, and nothing else
    for e in edges:
        for v in e.vertices:
            assert e.eid in h.incident_edge_ids(v)
    for v in h.vertices():
        for eid in h.incident_edge_ids(v):
            assert v in h.edge(eid).vertices
    assert h.total_cardinality == sum(e.cardinality for e in edges)


@given(edge_lists(max_rank=3))
def test_property_add_remove_roundtrip(edges):
    h = Hypergraph(edges)
    for e in list(edges):
        h.remove_edge(e.eid)
    assert len(h) == 0 and h.num_vertices == 0
