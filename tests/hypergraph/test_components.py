"""Tests for parallel connected components."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings

from repro.hypergraph.components import (
    component_sizes,
    connected_components,
    num_components,
    same_component,
)
from repro.hypergraph.edge import Edge
from repro.hypergraph.hypergraph import Hypergraph
from repro.parallel.ledger import Ledger
from repro.workloads.generators import erdos_renyi_edges, path_edges

from tests.conftest import edge_lists


class TestBasics:
    def test_empty(self):
        labels, rounds = connected_components(Hypergraph())
        assert labels == {}

    def test_single_edge(self):
        g = Hypergraph([Edge(0, (3, 7))])
        labels, _ = connected_components(g)
        assert labels == {3: 3, 7: 3}

    def test_two_components(self):
        g = Hypergraph([Edge(0, (1, 2)), Edge(1, (5, 6))])
        assert num_components(g) == 2
        assert component_sizes(g) == [2, 2]

    def test_path_is_one_component(self):
        g = Hypergraph(path_edges(30))
        assert num_components(g) == 1

    def test_hyperedge_connects_all_endpoints(self):
        g = Hypergraph([Edge(0, (1, 5, 9)), Edge(1, (9, 12, 13))])
        assert num_components(g) == 1

    def test_same_component(self):
        g = Hypergraph([Edge(0, (1, 2)), Edge(1, (5, 6))])
        assert same_component(g, 1, 2)
        assert not same_component(g, 1, 5)

    def test_same_component_missing_vertex(self):
        g = Hypergraph([Edge(0, (1, 2))])
        with pytest.raises(KeyError):
            same_component(g, 1, 99)

    def test_ledger_charged(self):
        led = Ledger()
        connected_components(Hypergraph(path_edges(10)), led)
        assert led.work > 0 and led.by_tag.get("components_round", 0) > 0


class TestAgainstNetworkx:
    @pytest.mark.parametrize("seed", range(5))
    def test_random_graphs_match_networkx(self, seed):
        edges = erdos_renyi_edges(30, 40, np.random.default_rng(seed))
        g = Hypergraph(edges)
        nxg = nx.Graph()
        nxg.add_edges_from(e.vertices for e in edges)
        assert num_components(g) == nx.number_connected_components(nxg)
        assert component_sizes(g) == sorted(
            (len(c) for c in nx.connected_components(nxg)), reverse=True
        )

    @given(edge_lists(max_rank=3, max_edges=25))
    @settings(max_examples=40)
    def test_property_labels_are_component_minima(self, edges):
        g = Hypergraph(edges)
        labels, _ = connected_components(g)
        # build reference components by expanding hyperedges to cliques
        nxg = nx.Graph()
        for e in edges:
            vs = list(e.vertices)
            nxg.add_node(vs[0])
            for a, b in zip(vs, vs[1:]):
                nxg.add_edge(a, b)
        for comp in nx.connected_components(nxg):
            lo = min(comp)
            for v in comp:
                assert labels[v] == lo
