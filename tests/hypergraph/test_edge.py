"""Unit tests for the Edge type."""

import pytest
from hypothesis import given, strategies as st

from repro.hypergraph.edge import Edge


class TestConstruction:
    def test_vertices_sorted_and_deduped(self):
        e = Edge(1, (5, 3, 5, 1))
        assert e.vertices == (1, 3, 5)

    def test_cardinality(self):
        assert Edge(0, (1, 2, 3)).cardinality == 3
        assert Edge(0, (7,)).cardinality == 1

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Edge(0, ())

    def test_immutable(self):
        e = Edge(0, (1, 2))
        with pytest.raises(AttributeError):
            e.eid = 5
        with pytest.raises(AttributeError):
            e.vertices = (3,)


class TestIdentity:
    def test_equality_by_id_only(self):
        assert Edge(1, (1, 2)) == Edge(1, (3, 4))
        assert Edge(1, (1, 2)) != Edge(2, (1, 2))

    def test_hash_by_id(self):
        assert hash(Edge(9, (1, 2))) == hash(Edge(9, (5, 6)))

    def test_usable_in_sets(self):
        s = {Edge(1, (1, 2)), Edge(1, (3, 4)), Edge(2, (1, 2))}
        assert len(s) == 2

    def test_not_equal_to_other_types(self):
        assert Edge(1, (1, 2)) != 1

    def test_ordering_by_id(self):
        assert Edge(1, (9,)) < Edge(2, (0,))


class TestIncidence:
    def test_intersects_shared_vertex(self):
        assert Edge(0, (1, 2)).intersects(Edge(1, (2, 3)))

    def test_no_intersection(self):
        assert not Edge(0, (1, 2)).intersects(Edge(1, (3, 4)))

    def test_self_intersection(self):
        e = Edge(0, (1, 2))
        assert e.intersects(e)

    def test_hyperedge_intersection(self):
        assert Edge(0, (1, 2, 3)).intersects(Edge(1, (3, 9, 10)))

    def test_covers(self):
        e = Edge(0, (1, 5))
        assert e.covers(5) and not e.covers(2)

    @given(
        st.lists(st.integers(0, 20), min_size=1, max_size=5),
        st.lists(st.integers(0, 20), min_size=1, max_size=5),
    )
    def test_property_intersects_iff_shared(self, a, b):
        ea, eb = Edge(0, a), Edge(1, b)
        assert ea.intersects(eb) == bool(set(a) & set(b))
        assert ea.intersects(eb) == eb.intersects(ea)


def test_repr_contains_id_and_vertices():
    r = repr(Edge(7, (2, 1)))
    assert "7" in r and "(1, 2)" in r


class TestPickling:
    def test_roundtrip(self):
        import pickle

        e = Edge(7, (3, 1, 9))
        back = pickle.loads(pickle.dumps(e))
        assert back == e and back.vertices == e.vertices

    def test_still_immutable_after_unpickle(self):
        import pickle

        back = pickle.loads(pickle.dumps(Edge(1, (1, 2))))
        with pytest.raises(AttributeError):
            back.eid = 5
