"""Tests for hypergraph descriptive statistics."""

import numpy as np
import pytest

from repro.hypergraph.edge import Edge
from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.statistics import (
    DegreeStats,
    cardinality_histogram,
    degree_histogram,
    density,
    incidence_skew,
    summary,
)
from repro.workloads.generators import star_edges


@pytest.fixture
def star():
    return Hypergraph(star_edges(11))  # hub degree 10, leaves degree 1


class TestDegreeStats:
    def test_star(self, star):
        s = DegreeStats.of(star)
        assert s.max == 10 and s.min == 1
        assert s.n == 11
        assert s.mean == pytest.approx(20 / 11)

    def test_empty(self):
        s = DegreeStats.of(Hypergraph())
        assert s.n == 0 and s.mean == 0.0


class TestHistograms:
    def test_degree_histogram(self, star):
        h = degree_histogram(star)
        assert h == {10: 1, 1: 10}

    def test_cardinality_histogram(self):
        g = Hypergraph([Edge(0, (1, 2)), Edge(1, (1, 2, 3)), Edge(2, (4, 5))])
        assert cardinality_histogram(g) == {2: 2, 3: 1}


class TestScalars:
    def test_density(self, star):
        assert density(star) == pytest.approx(10 / 11)

    def test_density_empty(self):
        assert density(Hypergraph()) == 0.0

    def test_skew_star_vs_path(self, star):
        from repro.workloads.generators import path_edges

        path = Hypergraph(path_edges(12))
        assert incidence_skew(star) > incidence_skew(path)

    def test_skew_regular_is_one(self):
        g = Hypergraph([Edge(0, (1, 2)), Edge(1, (3, 4))])
        assert incidence_skew(g) == pytest.approx(1.0)


class TestSummary:
    def test_keys_and_consistency(self, star):
        s = summary(star)
        assert s["vertices"] == 11
        assert s["edges"] == 10
        assert s["rank"] == 2
        assert s["total_cardinality"] == 20
        assert s["max_degree"] == 10
