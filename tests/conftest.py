"""Shared fixtures and hypothesis strategies for the whole test suite."""

from __future__ import annotations

from typing import List

import numpy as np
import pytest
from hypothesis import strategies as st

from repro.hypergraph.edge import Edge
from repro.parallel.ledger import Ledger


@pytest.fixture
def ledger() -> Ledger:
    return Ledger()


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


# --------------------------------------------------------------------- #
# Hypothesis strategies
# --------------------------------------------------------------------- #
def edge_lists(
    max_vertices: int = 12,
    max_edges: int = 30,
    max_rank: int = 2,
    min_edges: int = 0,
):
    """Strategy producing lists of distinct-id edges over a small vertex
    universe, with cardinality in [1, max_rank] (rank-2 by default)."""

    def build(raw: List[tuple]) -> List[Edge]:
        edges = []
        for i, vs in enumerate(raw):
            edges.append(Edge(i, vs))
        return edges

    vertex = st.integers(0, max_vertices - 1)
    vset = st.lists(vertex, min_size=1, max_size=max_rank, unique=True).map(tuple)
    return st.lists(vset, min_size=min_edges, max_size=max_edges).map(build)


def graph_edge_lists(max_vertices: int = 12, max_edges: int = 30, min_edges: int = 0):
    """Rank-exactly-2 edge lists (ordinary graphs, no self loops)."""

    def build(raw: List[tuple]) -> List[Edge]:
        return [Edge(i, vs) for i, vs in enumerate(raw)]

    vertex = st.integers(0, max_vertices - 1)
    pair = st.lists(vertex, min_size=2, max_size=2, unique=True).map(tuple)
    return st.lists(pair, min_size=min_edges, max_size=max_edges).map(build)


def update_scripts(max_vertices: int = 10, max_rank: int = 3, max_ops: int = 40):
    """Strategy for randomized insert/delete scripts.

    Emits a list of operations: ("insert", vertex-tuple) or
    ("delete", index) where the index selects among currently-live edges
    at replay time (mod live count).  The replay helper in tests turns
    this into concrete batches.
    """
    vertex = st.integers(0, max_vertices - 1)
    vset = st.lists(vertex, min_size=1, max_size=max_rank, unique=True).map(tuple)
    op = st.one_of(
        st.tuples(st.just("insert"), vset),
        st.tuples(st.just("delete"), st.integers(0, 10_000)),
    )
    return st.lists(op, min_size=0, max_size=max_ops)
