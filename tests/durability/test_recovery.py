"""Checkpoint + recovery tests: the certified crash-restart path."""

import numpy as np
import pytest

from repro.core.dynamic_matching import DynamicMatching
from repro.durability import (
    DurabilityManager,
    JournalError,
    RecoveryCertificationError,
    certify_against_oracle,
    recover,
)
from repro.durability.checkpoint import (
    latest_valid_checkpoint,
    list_checkpoints,
    load_checkpoint,
    write_checkpoint,
)
from repro.testing.faults import random_batches
from repro.workloads.runner import run_stream
from repro.workloads.streams import UpdateBatch


def apply_batch(dm, batch):
    if batch.kind == "insert":
        dm.insert_edges(list(batch.edges))
    else:
        dm.delete_edges(list(batch.eids))


def durable_run(directory, seed, n_batches=16, checkpoint_every=4, backend="array"):
    rng = np.random.default_rng(seed)
    batches = random_batches(rng, n_batches)
    dm = DynamicMatching(rank=3, seed=seed, backend=backend)
    with DurabilityManager.create(
        str(directory), dm, checkpoint_every=checkpoint_every
    ) as mgr:
        for batch in batches:
            mgr.log_batch(batch)
            apply_batch(dm, batch)
            mgr.note_applied(dm)
    return dm, batches


class TestCheckpoint:
    def test_roundtrip(self, tmp_path):
        dm, _ = durable_run(tmp_path, seed=1)
        path = write_checkpoint(str(tmp_path), dm, applied=16)
        payload = load_checkpoint(path)
        assert payload is not None and payload["applied"] == 16
        assert payload["ledger"]["work"] == dm.ledger.work

    def test_corrupt_detected(self, tmp_path):
        dm, _ = durable_run(tmp_path, seed=2)
        path = write_checkpoint(str(tmp_path), dm, applied=16)
        data = bytearray(open(path, "rb").read())
        data[len(data) // 3] ^= 0x42
        open(path, "wb").write(bytes(data))
        assert load_checkpoint(path) is None

    def test_latest_valid_skips_future(self, tmp_path):
        dm, _ = durable_run(tmp_path, seed=3)
        write_checkpoint(str(tmp_path), dm, applied=99)  # claims too much
        payload, skipped = latest_valid_checkpoint(str(tmp_path), max_applied=16)
        assert payload is not None and payload["applied"] <= 16
        assert any("inconsistent" in s for s in skipped)

    def test_pruning_keeps_newest(self, tmp_path):
        durable_run(tmp_path, seed=4, n_batches=20, checkpoint_every=2)
        ckpts = list_checkpoints(str(tmp_path))
        assert len(ckpts) == 2  # keep=2 default
        assert ckpts[0][0] > ckpts[1][0]


class TestRecover:
    @pytest.mark.parametrize("backend", ["array", "dict"])
    def test_certified_recovery(self, tmp_path, backend):
        dm, _ = durable_run(tmp_path, seed=5, backend=backend)
        res = recover(str(tmp_path))
        assert res.certified
        assert res.applied == 16
        assert res.dm.matched_ids() == dm.matched_ids()
        assert res.dm.ledger.work == dm.ledger.work
        assert res.dm.ledger.depth == dm.ledger.depth

    def test_uses_checkpoint(self, tmp_path):
        durable_run(tmp_path, seed=6, n_batches=10, checkpoint_every=4)
        res = recover(str(tmp_path))
        assert res.checkpoint_applied == 8
        assert res.replayed == 2

    def test_full_replay_without_checkpoints(self, tmp_path):
        durable_run(tmp_path, seed=7, n_batches=6, checkpoint_every=100)
        res = recover(str(tmp_path))
        assert res.checkpoint_applied is None
        assert res.replayed == 6
        assert res.certified

    def test_cross_backend_recovery(self, tmp_path):
        """A journal written by one backend recovers into the other with
        identical matching and costs (checkpoints are backend-neutral)."""
        dm, _ = durable_run(tmp_path, seed=8, backend="array")
        res = recover(str(tmp_path), backend="dict")
        assert res.dm.backend == "dict"
        assert res.dm.matched_ids() == dm.matched_ids()
        assert res.dm.ledger.work == dm.ledger.work

    def test_missing_journal_raises(self, tmp_path):
        with pytest.raises(JournalError):
            recover(str(tmp_path))

    def test_certification_catches_divergence(self, tmp_path):
        durable_run(tmp_path, seed=9)
        res = recover(str(tmp_path), do_certify=False)
        # Sabotage the recovered instance; certification must notice.
        live = [e.eid for e in res.dm.structure.all_edges()]
        if live:
            res.dm.delete_edges([live[0]])
        else:
            from repro.hypergraph.edge import Edge
            res.dm.insert_edges([Edge(10_000, [0, 1, 2])])
        with pytest.raises(RecoveryCertificationError):
            certify_against_oracle(res)

    def test_recovered_instance_continues_identically(self, tmp_path):
        dm, _ = durable_run(tmp_path, seed=10)
        res = recover(str(tmp_path))
        extra = random_batches(np.random.default_rng(99), 8, eid_start=10_000)
        for batch in extra:
            apply_batch(dm, batch)
            apply_batch(res.dm, batch)
        assert res.dm.matched_ids() == dm.matched_ids()
        assert res.dm.ledger.work == dm.ledger.work
        assert res.dm.ledger.depth == dm.ledger.depth


class TestManager:
    def test_create_requires_pristine(self, tmp_path):
        dm = DynamicMatching(rank=3, seed=0)
        from repro.hypergraph.edge import Edge
        dm.insert_edges([Edge(0, [1, 2, 3])])
        with pytest.raises(JournalError):
            DurabilityManager.create(str(tmp_path), dm)

    def test_checkpoint_cadence(self, tmp_path):
        dm = DynamicMatching(rank=3, seed=0)
        batches = random_batches(np.random.default_rng(0), 9)
        with DurabilityManager.create(str(tmp_path), dm, checkpoint_every=3) as mgr:
            paths = []
            for batch in batches:
                mgr.log_batch(batch)
                apply_batch(dm, batch)
                p = mgr.note_applied(dm)
                if p:
                    paths.append(p)
        assert len(paths) == 3  # after batches 3, 6, 9

    def test_resume_appends(self, tmp_path):
        durable_run(tmp_path, seed=11, n_batches=5)
        res = recover(str(tmp_path))
        extra = random_batches(np.random.default_rng(1), 3, eid_start=10_000)
        with DurabilityManager.resume(str(tmp_path), applied=res.applied) as mgr:
            for batch in extra:
                mgr.log_batch(batch)
                apply_batch(res.dm, batch)
                mgr.note_applied(res.dm)
        res2 = recover(str(tmp_path))
        assert res2.applied == 8
        assert res2.certified

    def test_resume_after_torn_tail_keeps_new_batches(self, tmp_path):
        """Regression: batches acknowledged after a torn-tail recovery must
        survive the *next* recovery — resume compacts the damage away
        instead of appending behind it."""
        import os

        durable_run(tmp_path, seed=13, n_batches=6, checkpoint_every=100)
        jpath = os.path.join(str(tmp_path), "journal.jsonl")
        data = open(jpath, "rb").read()
        open(jpath, "wb").write(data[:-15])  # crash mid-write of the last record

        res = recover(str(tmp_path))
        assert res.applied == 5
        assert any("torn" in a for a in res.anomalies)

        extra = random_batches(np.random.default_rng(2), 4, eid_start=10_000)
        with DurabilityManager.resume(str(tmp_path), applied=res.applied) as mgr:
            for batch in extra:
                mgr.log_batch(batch)
                apply_batch(res.dm, batch)
                mgr.note_applied(res.dm)

        res2 = recover(str(tmp_path))
        assert res2.applied == 9  # every post-resume batch still durable
        assert res2.certified
        assert res2.journal.anomalies == []
        assert res2.dm.matched_ids() == res.dm.matched_ids()
        assert res2.dm.ledger.work == res.dm.ledger.work

    def test_resume_rejects_wrong_applied(self, tmp_path):
        durable_run(tmp_path, seed=14, n_batches=4)
        with pytest.raises(JournalError):
            DurabilityManager.resume(str(tmp_path), applied=2)

    def test_create_refuses_stale_checkpoints(self, tmp_path):
        """Regression: a fresh journal next to leftover checkpoint files
        could recover into an unrelated run's state."""
        import os

        durable_run(tmp_path, seed=15, n_batches=8, checkpoint_every=4)
        os.remove(os.path.join(str(tmp_path), "journal.jsonl"))
        assert list_checkpoints(str(tmp_path))  # stale checkpoints remain
        dm = DynamicMatching(rank=3, seed=0)
        with pytest.raises(JournalError):
            DurabilityManager.create(str(tmp_path), dm)


class TestRunnerIntegration:
    def test_run_stream_durable_then_recover(self, tmp_path):
        batches = random_batches(np.random.default_rng(12), 12)
        dm = DynamicMatching(rank=3, seed=12)
        with DurabilityManager.create(str(tmp_path), dm, checkpoint_every=4) as mgr:
            run_stream(dm, batches, check=True, durability=mgr)
        res = recover(str(tmp_path))
        assert res.certified
        assert res.dm.matched_ids() == dm.matched_ids()

    def test_mirror_dedupes_duplicate_ids(self):
        """Regression: a batch repeating an edge id must not crash the
        mirror check when the algorithm treats batches as sets."""
        from repro.hypergraph.edge import Edge
        from repro.hypergraph.hypergraph import Hypergraph
        from repro.parallel.ledger import Ledger

        class SetSemanticsAlgo:
            # Minimal duck-typed algorithm that dedupes within a batch.
            def __init__(self):
                self.ledger = Ledger()
                self.graph = Hypergraph()
                self._matched = []

            def insert_edges(self, edges):
                seen = {}
                for e in edges:
                    if e.eid not in seen and e.eid not in self.graph:
                        seen[e.eid] = e
                self.graph.add_edges(list(seen.values()))
                self._rematch()

            def delete_edges(self, eids):
                self.graph.remove_edges(dict.fromkeys(eids))
                self._rematch()

            def _rematch(self):
                self._matched, used = [], set()
                for e in self.graph.edges():
                    if not used.intersection(e.vertices):
                        used.update(e.vertices)
                        self._matched.append(e.eid)

            def matched_ids(self):
                return list(self._matched)

            def __len__(self):
                return len(self.graph)

        stream = [
            UpdateBatch.insert([Edge(0, [1, 2]), Edge(0, [1, 2]), Edge(1, [3, 4])]),
            UpdateBatch.delete([0, 0]),
        ]
        records = run_stream(SetSemanticsAlgo(), stream, check=True)
        assert records[-1].live_edges == 1
