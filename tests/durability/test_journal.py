"""Unit tests for the write-ahead journal: framing, writer, tolerant reader."""

import os

import pytest

from repro.durability.journal import (
    JOURNAL_VERSION,
    JournalError,
    JournalWriter,
    batch_to_record,
    frame_record,
    parse_record,
    read_journal,
    record_to_batch,
)
from repro.hypergraph.edge import Edge
from repro.workloads.streams import UpdateBatch

CONFIG = {"rank": 3, "alpha": 4, "heavy_factor": 2.0, "backend": "array"}
RNG_STATE = {"bit_generator": "PCG64", "state": {"state": 1, "inc": 2},
             "has_uint32": 0, "uinteger": 0}


def make_journal(path, n_batches=5):
    with JournalWriter.create(str(path), CONFIG, RNG_STATE) as w:
        for i in range(n_batches):
            if i % 2 == 0:
                w.append_batch(UpdateBatch.insert([Edge(i, [i, i + 1, i + 2])]))
            else:
                w.append_batch(UpdateBatch.delete([i - 1]))
    return str(path)


class TestFraming:
    def test_roundtrip(self):
        rec = {"kind": "batch", "seq": 3, "op": "delete", "eids": [1, 2]}
        parsed = parse_record(frame_record(rec))
        assert parsed is not None
        assert {k: parsed[k] for k in rec} == rec

    def test_single_flipped_char_rejected(self):
        line = frame_record({"kind": "batch", "seq": 0, "op": "delete", "eids": [7]})
        pos = line.index("7")
        assert parse_record(line[:pos] + "8" + line[pos + 1:]) is None

    def test_truncation_rejected(self):
        line = frame_record({"kind": "batch", "seq": 0, "op": "delete", "eids": [7]})
        for cut in range(1, len(line)):
            assert parse_record(line[:cut]) is None

    def test_garbage_rejected(self):
        assert parse_record("") is None
        assert parse_record("not json") is None
        assert parse_record('{"no": "crc"}') is None
        assert parse_record('[1, 2, 3]') is None

    def test_batch_record_roundtrip(self):
        ins = UpdateBatch.insert([Edge(4, [1, 2, 3]), Edge(5, [2, 3, 9])])
        dele = UpdateBatch.delete([4, 5])
        for seq, batch in ((0, ins), (1, dele)):
            back = record_to_batch(parse_record(frame_record(batch_to_record(seq, batch))))
            assert back.kind == batch.kind
            assert [ (e.eid, tuple(e.vertices)) for e in back.edges ] == \
                   [ (e.eid, tuple(e.vertices)) for e in batch.edges ]
            assert back.eids == batch.eids


class TestWriter:
    def test_create_then_read(self, tmp_path):
        path = make_journal(tmp_path / "j.jsonl", 4)
        data = read_journal(path)
        assert data.config == CONFIG
        assert data.rng_state == RNG_STATE
        assert len(data.batches) == 4
        assert data.anomalies == []

    def test_create_refuses_existing(self, tmp_path):
        path = make_journal(tmp_path / "j.jsonl")
        with pytest.raises(JournalError):
            JournalWriter.create(path, CONFIG, RNG_STATE)

    def test_resume_continues_sequence(self, tmp_path):
        path = make_journal(tmp_path / "j.jsonl", 3)
        with JournalWriter.resume(path, next_seq=3) as w:
            assert w.next_seq == 3
            w.append_batch(UpdateBatch.delete([0]))
        assert len(read_journal(path).batches) == 4

    def test_resume_requires_file(self, tmp_path):
        with pytest.raises(JournalError):
            JournalWriter.resume(str(tmp_path / "missing.jsonl"), next_seq=0)

    def test_resume_rejects_wrong_next_seq(self, tmp_path):
        path = make_journal(tmp_path / "j.jsonl", 3)
        for wrong in (0, 2, 4):
            with pytest.raises(JournalError):
                JournalWriter.resume(path, next_seq=wrong)

    def test_resume_derives_next_seq(self, tmp_path):
        path = make_journal(tmp_path / "j.jsonl", 3)
        with JournalWriter.resume(path) as w:
            assert w.next_seq == 3

    def test_resume_compacts_torn_tail(self, tmp_path):
        # Records appended after a torn tail must not be shadowed by it:
        # resume rewrites the file to the trusted prefix first.
        path = make_journal(tmp_path / "j.jsonl", 5)
        data = open(path, "rb").read()
        open(path, "wb").write(data[:-20])  # tear the last record
        assert len(read_journal(path).batches) == 4
        with JournalWriter.resume(path) as w:
            assert w.next_seq == 4
            w.append_batch(UpdateBatch.delete([0]))
        out = read_journal(path)
        assert len(out.batches) == 5
        assert out.anomalies == []

    def test_resume_compacts_missing_trailing_newline(self, tmp_path):
        # A fully valid file whose last line lacks '\n' (e.g. the crash
        # hit between write and newline flush) must not merge the next
        # appended record into the previous line.
        path = make_journal(tmp_path / "j.jsonl", 3)
        data = open(path, "rb").read()
        assert data.endswith(b"\n")
        open(path, "wb").write(data[:-1])
        with JournalWriter.resume(path) as w:
            w.append_batch(UpdateBatch.delete([0]))
        out = read_journal(path)
        assert len(out.batches) == 4
        assert out.anomalies == []

    def test_resume_compacts_duplicates_and_reordering(self, tmp_path):
        path = make_journal(tmp_path / "j.jsonl", 4)
        lines = open(path).read().splitlines()
        lines[1], lines[3] = lines[3], lines[1]
        lines.append(lines[2])  # duplicate a batch record
        open(path, "w").write("\n".join(lines) + "\n")
        with JournalWriter.resume(path) as w:
            assert w.next_seq == 4
        out = read_journal(path)
        assert len(out.batches) == 4
        assert out.anomalies == []
        # physical order restored: batch i really is sequence i
        assert out.batches[0].kind == "insert" and out.batches[0].edges[0].eid == 0

    def test_resume_leaves_clean_file_untouched(self, tmp_path):
        path = make_journal(tmp_path / "j.jsonl", 3)
        before = os.stat(path).st_ino, open(path, "rb").read()
        with JournalWriter.resume(path):
            pass
        after = os.stat(path).st_ino, open(path, "rb").read()
        assert before == after  # no rewrite when nothing needed repair


class TestTolerantReader:
    def test_missing_file(self, tmp_path):
        with pytest.raises(JournalError):
            read_journal(str(tmp_path / "nope.jsonl"))

    def test_corrupt_header_unrecoverable(self, tmp_path):
        path = make_journal(tmp_path / "j.jsonl")
        lines = open(path).read().splitlines()
        lines[0] = lines[0][:-5] + "XXXXX"
        open(path, "w").write("\n".join(lines) + "\n")
        with pytest.raises(JournalError):
            read_journal(path)

    def test_wrong_version_rejected(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        open(path, "w").write(frame_record({
            "kind": "header", "version": JOURNAL_VERSION + 1,
            "config": CONFIG, "rng_state": RNG_STATE,
        }) + "\n")
        with pytest.raises(JournalError):
            read_journal(path)

    def test_torn_tail_trusted_prefix(self, tmp_path):
        path = make_journal(tmp_path / "j.jsonl", 5)
        data = open(path, "rb").read()
        open(path, "wb").write(data[:-20])
        out = read_journal(path)
        assert len(out.batches) == 4
        assert any("torn" in a for a in out.anomalies)

    def test_duplicate_dropped(self, tmp_path):
        path = make_journal(tmp_path / "j.jsonl", 4)
        lines = open(path).read().splitlines()
        lines.append(lines[2])
        open(path, "w").write("\n".join(lines) + "\n")
        out = read_journal(path)
        assert len(out.batches) == 4
        assert any("duplicate" in a for a in out.anomalies)

    def test_reorder_repaired(self, tmp_path):
        path = make_journal(tmp_path / "j.jsonl", 4)
        lines = open(path).read().splitlines()
        lines[1], lines[3] = lines[3], lines[1]
        open(path, "w").write("\n".join(lines) + "\n")
        out = read_journal(path)
        assert len(out.batches) == 4
        # order repaired: batch i really is sequence i
        assert out.batches[0].kind == "insert" and out.batches[0].edges[0].eid == 0

    def test_gap_truncates(self, tmp_path):
        path = make_journal(tmp_path / "j.jsonl", 5)
        lines = open(path).read().splitlines()
        del lines[3]  # remove seq=2
        open(path, "w").write("\n".join(lines) + "\n")
        out = read_journal(path)
        assert len(out.batches) == 2
        assert any("gap" in a for a in out.anomalies)

    def test_fsync_discipline_writes_before_returning(self, tmp_path):
        # After append_batch returns the record must already be on disk:
        # reading the file through a separate descriptor sees it.
        path = str(tmp_path / "j.jsonl")
        with JournalWriter.create(path, CONFIG, RNG_STATE) as w:
            w.append_batch(UpdateBatch.delete([9]))
            assert os.path.getsize(path) > 0
            assert len(read_journal(path).batches) == 1
