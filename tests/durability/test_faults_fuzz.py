"""Seeded fuzz loops: every fault class must recover to the certified oracle.

Each trial runs a random workload durably, injects one fault (a
mid-phase process crash or a storage corruption), recovers, and the
recovery path itself certifies the result against an uninterrupted
oracle replay — matching ids, live edges, exact ledger work/depth,
matching certificate, and full structure invariants.

``REPRO_FAULT_SEED`` offsets the seed base so CI can run disjoint seed
populations across a matrix without changing the code.
"""

import os

import pytest

from repro.testing.faults import (
    FAULT_CLASSES,
    CrashInjector,
    SimulatedCrash,
    fuzz_recovery_trial,
)

TRIALS = 25
BASE = int(os.environ.get("REPRO_FAULT_SEED", "0")) * 100_000

pytestmark = [pytest.mark.fault, pytest.mark.fuzz]


@pytest.mark.parametrize("fault", FAULT_CLASSES)
def test_fuzz_recovery_converges(tmp_path, fault):
    """>= 25 seeded trials per fault class, each certificate-checked."""
    crashed = 0
    for trial in range(TRIALS):
        directory = tmp_path / f"{fault}-{trial}"
        directory.mkdir()
        out = fuzz_recovery_trial(
            str(directory),
            seed=BASE + trial * 17 + FAULT_CLASSES.index(fault) * 1000,
            fault=fault,
        )
        assert out.result.certified, (fault, trial, out.note)
        # recovery reflects every durably logged batch the reader trusts
        assert out.result.applied <= out.logged
        if fault != "torn_tail":  # tearing deliberately discards records
            assert out.result.applied >= out.applied_before_fault
        if "crash" in out.note:
            crashed += 1
    if fault == "crash":
        # the crash-point draw must actually fire in a healthy fraction
        assert crashed >= TRIALS // 4, f"only {crashed}/{TRIALS} trials crashed"


def test_crash_injector_fires_at_exact_event():
    inj = CrashInjector(at=3)
    inj("a")
    inj("b")
    with pytest.raises(SimulatedCrash):
        inj("c")
    assert inj.fired and inj.events == ["a", "b", "c"]


def test_crash_injector_rejects_zero():
    with pytest.raises(ValueError):
        CrashInjector(at=0)


@pytest.mark.parametrize("fault", FAULT_CLASSES)
def test_fuzz_resume_after_fault_keeps_new_batches(tmp_path, fault):
    """Regression for the torn-tail resume hole: batches served after a
    faulty restart must survive the *next* recovery, for every fault
    class — resume compacts journal damage before appending."""
    for trial in range(10):
        directory = tmp_path / f"r-{fault}-{trial}"
        directory.mkdir()
        out = fuzz_recovery_trial(
            str(directory),
            seed=BASE + 40_000 + trial * 13 + FAULT_CLASSES.index(fault) * 500,
            fault=fault,
            resume_batches=4,
        )
        assert out.resumed is not None and out.resumed.certified
        # every post-resume batch is durable and trusted on re-recovery
        assert out.resumed.applied == out.result.applied + 4, (fault, trial, out.note)
        assert out.resumed.journal.anomalies == [], (fault, trial, out.note)


@pytest.mark.parametrize("fault", ["crash", "torn_tail"])
def test_fuzz_cross_backend_recovery(tmp_path, fault):
    """A handful of trials recovering into the opposite backend."""
    for trial in range(5):
        directory = tmp_path / f"x-{fault}-{trial}"
        directory.mkdir()
        backend = "dict" if trial % 2 else "array"
        out = fuzz_recovery_trial(
            str(directory), seed=BASE + 7000 + trial, fault=fault,
            recover_backend=backend,
        )
        assert out.result.certified
        assert out.result.dm.backend == backend
