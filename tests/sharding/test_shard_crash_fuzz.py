"""Shard crash/corruption fuzz: coordinated recovery must re-certify.

Extends the durability fault harness to the sharded service: each seeded
trial runs a durable sharded workload, injects one fault into a random
*victim* shard — a mid-batch simulated crash inside its DynamicMatching,
or a storage mutation of its on-disk journal/checkpoints — then performs
coordinated recovery from the per-shard journals.  The recovery path
itself certifies the result against a from-scratch sharded oracle replay
(merged matching, live edge set, per-shard float-exact ledgers, merged
certificate, per-shard invariants), so a passing trial is a proof of
replay consistency, not just the absence of an exception.

A separate test SIGKILLs a real shard process mid-stream (process
transport) and recovers the service from disk.
"""

import os

import numpy as np
import pytest

from repro.sharding import ShardCrashError, ShardedMatching, recover_sharded
from repro.testing.faults import (
    FAULT_CLASSES,
    fuzz_shard_recovery_trial,
    random_batches,
)

pytestmark = [pytest.mark.sharding, pytest.mark.fault, pytest.mark.fuzz]

TRIALS = 10
BASE = int(os.environ.get("REPRO_FAULT_SEED", "0")) * 100_000


@pytest.mark.parametrize("fault", FAULT_CLASSES)
def test_shard_fuzz_recovery_converges(tmp_path, fault):
    """10 seeded trials per damage class, each certified on recovery."""
    crashed = 0
    for trial in range(TRIALS):
        directory = tmp_path / f"{fault}-{trial}"
        directory.mkdir()
        out = fuzz_shard_recovery_trial(
            str(directory),
            seed=BASE + trial * 23 + FAULT_CLASSES.index(fault) * 2000,
            fault=fault,
            shards=2 + trial % 2,  # alternate K ∈ {2, 3}
        )
        assert out.report, (fault, trial, out.note)
        assert out.report["batches"] == out.applied
        # Recovery reflects at least every batch fully applied before the
        # fault (write-ahead: a logged-not-applied tail may add one more).
        if fault not in ("torn_tail",):  # tearing discards records by design
            assert out.applied >= out.applied_before_fault, (fault, trial, out.note)
        if "crash" in out.note:
            crashed += 1
    if fault == "crash":
        assert crashed >= TRIALS // 3, f"only {crashed}/{TRIALS} trials crashed"


@pytest.mark.parametrize("fault", FAULT_CLASSES)
def test_shard_fuzz_resume_after_fault(tmp_path, fault):
    """The recovered service keeps serving durably: post-recovery batches
    must survive (and re-certify through) the next recovery."""
    for trial in range(3):
        directory = tmp_path / f"r-{fault}-{trial}"
        directory.mkdir()
        out = fuzz_shard_recovery_trial(
            str(directory),
            seed=BASE + 60_000 + trial * 31 + FAULT_CLASSES.index(fault) * 700,
            fault=fault,
            resume_batches=4,
        )
        assert out.resumed_report is not None, (fault, trial)
        assert out.resumed_report["batches"] == out.applied + 4, (fault, trial, out.note)


def test_torn_victim_shard_is_topped_up_or_rebuilt(tmp_path):
    """A victim shard that lost journal records must be reconciled from
    the router journal — recovery reports the repair it performed."""
    repaired = 0
    for trial in range(TRIALS):
        directory = tmp_path / f"t-{trial}"
        directory.mkdir()
        out = fuzz_shard_recovery_trial(
            str(directory), seed=BASE + 90_000 + trial * 7, fault="torn_tail"
        )
        info = out.per_shard[out.victim_shard]
        if info["rebuilt"] or info["topped_up"]:
            repaired += 1
    assert repaired >= TRIALS // 2, f"only {repaired}/{TRIALS} trials repaired anything"


def test_sigkilled_shard_process_recovers(tmp_path):
    """Kill a real shard process mid-stream; the router surfaces
    ShardCrashError and coordinated recovery restores a certified state."""
    root = str(tmp_path / "svc")
    rng = np.random.default_rng(BASE + 4242)
    batches = random_batches(rng, 14, rank=2)
    router = ShardedMatching(
        shards=2, rank=2, seed=11, transport="process",
        durability_root=root, checkpoint_every=3, fsync=False,
    )
    applied = 0
    try:
        for batch in batches[:6]:
            router.apply_batch(batch)
            applied += 1
        victim = router.hosts[1]
        assert victim.pid != os.getpid()
        victim.kill()
        with pytest.raises(ShardCrashError):
            for batch in batches[6:]:
                router.apply_batch(batch)
                applied += 1
    finally:
        router.close()

    res = recover_sharded(root, do_certify=True, fsync=False)
    try:
        assert res.certified
        assert res.applied >= applied
        # The recovered service is live: it serves more batches durably.
        extra = random_batches(rng, 3, rank=2, eid_start=500_000)
        for batch in extra:
            res.router.apply_batch(batch)
        res.router.check_invariants()
    finally:
        res.router.close()

    res2 = recover_sharded(root, do_certify=True, fsync=False)
    res2.router.close()
    assert res2.applied == res.applied + len(extra)
