"""Cross-shard differential certification: K ∈ {1, 2, 4} vs unsharded.

30 random traces are replayed through the unsharded pipeline and through
sharded routers at K ∈ {1, 2, 4}.  Sharding intentionally changes *which*
maximal matching is produced for K >= 2 (independent per-shard RNG
streams, deterministic handoff instead of random settling), so the
differential contract is invariant-based, certified after **every batch**:

* the merged matching is a valid, maximal matching of the whole graph,
  proven by an independently verified
  :class:`repro.core.certify.MatchingCertificate`;
* K = 1 is **bit-identical** to the unsharded pipeline — same matching
  ids every batch, float-exact same shard ledger at the end;
* the merged ledger equals router charges + the sum of per-shard
  ledgers, tag by tag (cost conservation across the split).
"""

import numpy as np
import pytest

from repro.core.dynamic_matching import DynamicMatching
from repro.sharding import ShardedMatching
from repro.testing.faults import random_batches

pytestmark = pytest.mark.sharding

TRACES = 30
SHARD_COUNTS = (1, 2, 4)


def _trace(trial: int):
    rng = np.random.default_rng(9_000 + trial)
    rank = 2 if trial % 2 else 3
    return rank, random_batches(rng, n_batches=10, rank=rank, n_vertices=32)


def _apply(algo, batch):
    if batch.kind == "insert":
        algo.insert_edges(list(batch.edges))
    else:
        algo.delete_edges(list(batch.eids))


@pytest.mark.parametrize("trial", range(TRACES))
def test_differential_trace(trial):
    rank, batches = _trace(trial)
    seed = 40_000 + trial
    unsharded = DynamicMatching(rank=rank, rng=np.random.default_rng(seed))
    routers = {
        k: ShardedMatching(shards=k, rank=rank, seed=seed, transport="inline")
        for k in SHARD_COUNTS
    }
    try:
        for batch in batches:
            _apply(unsharded, batch)
            for k, router in routers.items():
                _apply(router, batch)
                # Merged maximality, proven independently every batch.
                router.certificate().verify(router.all_edges())
                assert len(router) == len(unsharded), (trial, k)
            # K=1 is bit-identical to the unsharded pipeline, every batch.
            assert routers[1].matched_ids() == unsharded.matched_ids(), trial

        for k, router in routers.items():
            # Cost conservation: merged ledger == router + sum of shards,
            # in totals and tag by tag.
            bd = router.ledger_breakdown()
            shard_work = sum(w for _, w, _, _ in bd["shards"])
            shard_depth = sum(d for _, _, d, _ in bd["shards"])
            assert router.ledger.work == bd["router"][0] + shard_work, (trial, k)
            assert router.ledger.depth == bd["router"][1] + shard_depth, (trial, k)
            merged_tags = router.ledger.by_tag
            expect = dict(bd["router"][2])
            for _, _, _, tags in bd["shards"]:
                for tag, w in tags.items():
                    expect[tag] = expect.get(tag, 0.0) + w
            assert merged_tags == pytest.approx(expect), (trial, k)
            # Routed update totals conserve the trace.
            st = router.shard_stats
            total = sum(b.size for b in batches)
            assert st["local_updates"] + st["cross_updates"] == total, (trial, k)
            router.check_invariants()

        # Bit-identity extends to the ledger: shard 0 of K=1 charged the
        # exact float sequence the unsharded structure did.
        s0 = routers[1].ledger_breakdown()["shards"][0]
        assert s0[1] == unsharded.ledger.work, trial
        assert s0[2] == unsharded.ledger.depth, trial
        assert s0[3] == dict(unsharded.ledger.by_tag), trial
        assert routers[1].shard_stats["cross_updates"] == 0, "K=1 has no cross edges"
    finally:
        for router in routers.values():
            router.close()


def test_shard_counts_actually_split_work():
    """Sanity on the suite itself: at K >= 2 the traces do produce both
    local and cross updates, so the differential above exercises the
    handoff rather than vacuously passing."""
    rank, batches = _trace(1)
    for k in (2, 4):
        with ShardedMatching(shards=k, rank=rank, seed=7, transport="inline") as r:
            for batch in batches:
                _apply(r, batch)
            assert r.shard_stats["local_updates"] > 0, k
            assert r.shard_stats["cross_updates"] > 0, k
            assert r.shard_stats["proposals"] > 0, k
