"""Router, shard, and transport unit tests: validation, durability
wiring, metrics, and the run_stream duck-type contract."""

import json
import os

import numpy as np
import pytest

from repro.durability.journal import JournalError
from repro.hypergraph.edge import Edge
from repro.sharding import (
    MANIFEST_FILE,
    ProcessShardHost,
    ShardConfig,
    ShardRemoteError,
    ShardedMatching,
    is_sharded_root,
    read_manifest,
)
from repro.testing.faults import random_batches
from repro.workloads.runner import run_stream, summarize

pytestmark = pytest.mark.sharding


def e(eid, u, v):
    return Edge(eid, (u, v))


class TestValidation:
    def test_rejects_zero_shards(self):
        with pytest.raises(ValueError):
            ShardedMatching(shards=0)

    def test_rejects_unknown_transport(self):
        with pytest.raises(ValueError, match="transport"):
            ShardedMatching(shards=2, transport="carrier-pigeon")

    def test_duplicate_ids_in_batch(self):
        with ShardedMatching(shards=2, transport="inline") as r:
            with pytest.raises(ValueError, match="duplicate"):
                r.insert_edges([e(1, 0, 1), e(1, 2, 3)])
            assert len(r) == 0

    def test_insert_present_id_raises_before_mutation(self):
        with ShardedMatching(shards=2, transport="inline") as r:
            r.insert_edges([e(1, 0, 1)])
            with pytest.raises(KeyError):
                r.insert_edges([e(2, 2, 3), e(1, 4, 5)])
            # validate-before-mutate: nothing from the bad batch landed
            assert 2 not in r and len(r) == 1

    def test_delete_absent_id_raises_before_mutation(self):
        with ShardedMatching(shards=2, transport="inline") as r:
            r.insert_edges([e(1, 0, 1)])
            with pytest.raises(KeyError):
                r.delete_edges([1, 99])
            assert 1 in r and len(r) == 1

    def test_rank_bound_enforced(self):
        with ShardedMatching(shards=2, rank=2, transport="inline") as r:
            with pytest.raises(ValueError, match="cardinality"):
                r.insert_edges([Edge(1, (0, 1, 2))])


class TestDurabilityRoot:
    def test_manifest_written_and_detected(self, tmp_path):
        root = str(tmp_path / "svc")
        with ShardedMatching(
            shards=2, transport="inline", durability_root=root, fsync=False
        ) as r:
            r.insert_edges([e(1, 0, 1)])
        assert is_sharded_root(root)
        manifest = read_manifest(root)
        assert manifest["shards"] == 2
        with open(os.path.join(root, MANIFEST_FILE)) as fh:
            assert json.load(fh) == manifest
        assert os.path.exists(os.path.join(root, "router", "journal.jsonl"))
        for s in range(2):
            assert os.path.exists(
                os.path.join(root, f"shard-{s:02d}", "journal.jsonl")
            )

    def test_refuses_to_reuse_existing_root(self, tmp_path):
        root = str(tmp_path / "svc")
        ShardedMatching(
            shards=2, transport="inline", durability_root=root, fsync=False
        ).close()
        with pytest.raises(JournalError, match="sharding.json"):
            ShardedMatching(shards=2, transport="inline", durability_root=root)

    def test_unsharded_dir_is_not_a_sharded_root(self, tmp_path):
        assert not is_sharded_root(str(tmp_path))


class TestRunStreamContract:
    def test_run_stream_drives_router_with_checks(self):
        batches = random_batches(np.random.default_rng(3), 8, rank=2)
        with ShardedMatching(shards=3, rank=2, seed=5, transport="inline") as r:
            records = run_stream(r, batches, check=True, observer=False)
            s = summarize(records)
            assert s["batches"] == len(batches)
            assert s["total_work"] == pytest.approx(r.ledger.work)
            assert records[-1].matching_size == len(r.matched_ids())

    def test_match_of_agrees_with_certificate(self):
        batches = random_batches(np.random.default_rng(4), 6, rank=2)
        with ShardedMatching(shards=2, rank=2, seed=6, transport="inline") as r:
            for b in batches:
                r.apply_batch(b)
            matched = set(r.matched_ids())
            covered = {
                v for edge in r.all_edges() if edge.eid in matched
                for v in edge.vertices
            }
            for edge in r.all_edges():
                for v in edge.vertices:
                    got = r.match_of(v)
                    assert (got is not None) == (v in covered)


class TestMetrics:
    def test_shard_metric_catalog_published(self):
        from repro.obs import Observer

        obs = Observer()
        batches = random_batches(np.random.default_rng(8), 6, rank=2)
        with ShardedMatching(shards=2, rank=2, seed=2, transport="inline") as r:
            r.attach_observer(obs)
            for b in batches:
                r.apply_batch(b)
            text = obs.registry.expose()
            for name in (
                "repro_shard_count",
                "repro_shard_batches_total",
                "repro_shard_local_updates_total",
                "repro_shard_cross_edges",
                "repro_shard_handoff_proposals_total",
                "repro_shard_matching_size",
                "repro_shard_ledger_work",
            ):
                assert name in text, name
            st = r.shard_stats
            fam = obs.registry.get("repro_shard_local_updates_total")
            local = sum(child.value for _, child in fam.samples())
            assert local == st["local_updates"]
            assert obs.registry.get("repro_shard_count").value() == r.k
        obs.close()


class TestProcessTransport:
    def test_remote_exception_carries_traceback(self):
        host = ProcessShardHost(ShardConfig(shard_id=0, shards=1, seed=0))
        try:
            with pytest.raises(ShardRemoteError, match="KeyError"):
                host.call("apply", "delete", [42])
            # the host survives an ordinary remote error
            assert host.call("num_edges") == 0
        finally:
            host.close()

    def test_kill_marks_host_broken(self):
        from repro.sharding import ShardCrashError

        host = ProcessShardHost(ShardConfig(shard_id=0, shards=1, seed=0))
        host.kill()
        assert host.broken
        with pytest.raises(ShardCrashError):
            host.call("num_edges")
        host.close()

    def test_process_matches_inline_bit_for_bit(self):
        batches = random_batches(np.random.default_rng(13), 8, rank=2)
        results = {}
        for transport in ("inline", "process"):
            with ShardedMatching(
                shards=2, rank=2, seed=21, transport=transport
            ) as r:
                for b in batches:
                    r.apply_batch(b)
                bd = r.ledger_breakdown()
                results[transport] = (
                    r.matched_ids(),
                    sorted(edge.eid for edge in r.all_edges()),
                    bd["merged_work"],
                    bd["merged_depth"],
                )
        assert results["inline"] == results["process"]
