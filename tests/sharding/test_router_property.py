"""Property tests for the router's pure core: split, merge, handoff.

Hypothesis-driven proofs of the bookkeeping laws everything else leans
on: a batch split is a *partition* of the batch (no edge id lost, none
duplicated, input order preserved within every bucket), re-merging
conserves every edge exactly, and the two-phase handoff is a
deterministic function of its inputs that always produces a valid,
fully-witnessed cross matching.
"""

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hypergraph.edge import Edge
from repro.sharding import (
    CROSS,
    merge_split,
    owner_shard,
    proposal_vertices,
    resolve,
    shard_of_edge,
    shard_of_vertex,
    shard_rng,
    split_delete,
    split_insert,
)

pytestmark = pytest.mark.sharding


@st.composite
def edge_batches(draw, max_edges: int = 24, max_vertex: int = 30):
    """A list of distinct-id edges of mixed rank 2-3."""
    n = draw(st.integers(0, max_edges))
    edges = []
    for eid in range(n):
        r = draw(st.integers(2, 3))
        vs = draw(
            st.lists(
                st.integers(0, max_vertex), min_size=r, max_size=r, unique=True
            )
        )
        edges.append(Edge(eid, vs))
    return edges


ks = st.integers(1, 5)


@given(edges=edge_batches(), k=ks)
@settings(max_examples=120, deadline=None)
def test_split_insert_is_partition(edges, k):
    split = split_insert(edges, k)
    assert len(split.locals_) == k
    # Conservation: every id in exactly one bucket, nothing invented.
    merged = merge_split(split)
    assert Counter(e.eid for e in merged) == Counter(e.eid for e in edges)
    assert split.n_local + split.n_cross == len(edges)
    # Routing correctness: local edges sit in their own shard's bucket,
    # cross edges genuinely span shards.
    for s, part in enumerate(split.locals_):
        for e in part:
            assert shard_of_edge(e, k) == s
            assert {shard_of_vertex(v, k) for v in e.vertices} == {s}
    for e in split.cross:
        assert shard_of_edge(e, k) == CROSS
        assert len({shard_of_vertex(v, k) for v in e.vertices}) > 1
    # Stable order: each bucket is a subsequence of the input.
    order = {e.eid: i for i, e in enumerate(edges)}
    for part in list(split.locals_) + [split.cross]:
        ids = [order[e.eid] for e in part]
        assert ids == sorted(ids)


@given(edges=edge_batches(), k=ks, data=st.data())
@settings(max_examples=120, deadline=None)
def test_split_delete_is_partition(edges, k, data):
    location = {
        e.eid: shard_of_edge(e, k) for e in edges
    }  # CROSS or shard id, as the router would hold it
    eids = [e.eid for e in edges]
    subset = data.draw(st.permutations(eids)) if eids else []
    split = split_delete(subset, location, k)
    merged = merge_split(split)
    assert Counter(merged) == Counter(subset)
    for s, part in enumerate(split.locals_):
        assert all(location[eid] == s for eid in part)
    assert all(location[eid] == CROSS for eid in split.cross)
    # Order stability within buckets.
    order = {eid: i for i, eid in enumerate(subset)}
    for part in list(split.locals_) + [split.cross]:
        ids = [order[eid] for eid in part]
        assert ids == sorted(ids)


def test_split_delete_unknown_id_raises_before_any_routing():
    with pytest.raises(KeyError):
        split_delete([7], {}, 2)


@given(v=st.integers(0, 2**40), k=st.integers(1, 16))
@settings(max_examples=200, deadline=None)
def test_shard_of_vertex_in_range_and_stable(v, k):
    s = shard_of_vertex(v, k)
    assert 0 <= s < k
    assert shard_of_vertex(v, k) == s


def test_shard_of_vertex_spreads_structured_ranges():
    """Consecutive vertex ids (star centers, grid rows) must not all land
    on one shard — the reason for the mixing hash over plain ``v % k``."""
    k = 4
    hits = Counter(shard_of_vertex(v, k) for v in range(256))
    assert len(hits) == k
    assert max(hits.values()) < 2 * 256 // k


@given(edges=edge_batches(max_vertex=20), k=st.integers(2, 5), data=st.data())
@settings(max_examples=120, deadline=None)
def test_handoff_is_deterministic_valid_and_witnessed(edges, k, data):
    cross = [e for e in edges if shard_of_edge(e, k) == CROSS]
    # A random plausible freeness report: some vertices covered by
    # fictitious local matches (ids disjoint from the cross edge ids).
    verts = sorted({v for e in cross for v in e.vertices})
    cover = {}
    for v in verts:
        if data.draw(st.booleans()):
            cover[v] = 10_000 + data.draw(st.integers(0, 5))

    r1 = resolve(cross, cover, k)
    r2 = resolve(list(reversed(cross)), dict(cover), k)
    # Pure function of (edge set, cover): input order is irrelevant.
    assert r1.matched == r2.matched and r1.witness == r2.witness

    by_id = {e.eid: e for e in cross}
    matched = set(r1.matched)
    # Valid: accepted edges are vertex-disjoint and fully free of covers.
    used = set()
    for eid in r1.matched:
        for v in by_id[eid].vertices:
            assert v not in used, "accepted cross edges collide"
            assert cover.get(v) is None, "accepted edge over a covered vertex"
            used.add(v)
    # Witnessed: every unmatched cross edge names a blocking matched edge
    # (a local cover id or an earlier accepted cross edge sharing a vertex).
    assert set(r1.witness) == set(by_id) - matched
    for eid, w in r1.witness.items():
        if w in matched:
            assert set(by_id[eid].vertices) & set(by_id[w].vertices)
        else:
            assert any(cover.get(v) == w for v in by_id[eid].vertices)
    # Tallies are consistent.
    assert r1.accepts == len(r1.matched)
    assert r1.accepts + r1.rejects_local + r1.rejects_cross == len(cross)
    assert r1.proposals >= r1.accepts


@given(edges=edge_batches(max_vertex=20), k=st.integers(2, 5))
@settings(max_examples=60, deadline=None)
def test_proposal_vertices_covers_every_endpoint_once(edges, k):
    cross = [e for e in edges if shard_of_edge(e, k) == CROSS]
    plan = proposal_vertices(cross, k)
    flat = [v for vs in plan.values() for v in vs]
    assert len(flat) == len(set(flat)), "a vertex queried twice"
    assert set(flat) == {v for e in cross for v in e.vertices}
    for s, vs in plan.items():
        assert vs == sorted(vs)
        assert all(shard_of_vertex(v, k) == s for v in vs)
    for e in cross:
        assert owner_shard(e, k) == min(shard_of_vertex(v, k) for v in e.vertices)


def test_shard_rng_k1_matches_unsharded_seed():
    import numpy as np

    a = shard_rng(123, 1, 0)
    b = np.random.default_rng(123)
    assert a.integers(0, 2**31, size=8).tolist() == b.integers(0, 2**31, size=8).tolist()


def test_shard_rng_streams_are_distinct():
    draws = {
        s: tuple(shard_rng(5, 4, s).integers(0, 2**31, size=4).tolist())
        for s in range(4)
    }
    assert len(set(draws.values())) == 4
