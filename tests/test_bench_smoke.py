"""Smoke-mode runs of the benchmark harnesses.

``REPRO_BENCH_SMOKE=1`` caps every sweep in ``benchmarks/bench_hotpath.py``,
``benchmarks/bench_dynamic.py`` and ``benchmarks/bench_queries.py`` to tiny
sizes, so CI can exercise the full harnesses — workload generation, replay,
ledger capture, JSON output, and the identity/comparison/certification
assertions — in seconds without timing anything meaningful.  Deselect with
``-m "not bench_smoke"`` if even that is too much.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
BENCH = REPO / "benchmarks" / "bench_hotpath.py"
BENCH_DYNAMIC = REPO / "benchmarks" / "bench_dynamic.py"
BENCH_QUERIES = REPO / "benchmarks" / "bench_queries.py"
BENCH_KERNELS = REPO / "benchmarks" / "bench_kernels.py"


def _run(label: str, out: Path) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    # Respect an explicit REPRO_BENCH_SMOKE from the caller (CI can set it
    # once for the whole job); default to smoke mode only when unset/empty.
    if not env.get("REPRO_BENCH_SMOKE"):
        env["REPRO_BENCH_SMOKE"] = "1"
    env["PYTHONPATH"] = str(REPO / "src")
    return subprocess.run(
        [sys.executable, str(BENCH), "--label", label, "--out", str(out)],
        capture_output=True,
        text=True,
        env=env,
        cwd=str(REPO),
        timeout=300,
    )


@pytest.mark.bench_smoke
@pytest.mark.skipif(
    os.environ.get("REPRO_BENCH_SMOKE") == "0",
    reason="REPRO_BENCH_SMOKE=0 explicitly disables the bench smoke run",
)
def test_bench_hotpath_smoke(tmp_path):
    out = tmp_path / "bench.json"

    first = _run("seed", out)
    assert first.returncode == 0, first.stderr

    second = _run("array", out)
    assert second.returncode == 0, second.stderr

    data = json.loads(out.read_text())
    for label in ("seed", "array"):
        for exp in ("e1", "e5", "e9"):
            assert data[label][exp], f"{label}/{exp} produced no rows"
    # Both labels replay identical seeded workloads in the same codebase,
    # so the comparison rows must report exact ledger parity.
    for row in data["comparison"]["e1"]:
        assert row["work_delta"] == 0
        assert row["depth_delta"] == 0


@pytest.mark.bench_smoke
@pytest.mark.skipif(
    os.environ.get("REPRO_BENCH_SMOKE") == "0",
    reason="REPRO_BENCH_SMOKE=0 explicitly disables the bench smoke run",
)
def test_bench_dynamic_smoke(tmp_path):
    out = tmp_path / "bench_dynamic.json"
    env = dict(os.environ)
    if not env.get("REPRO_BENCH_SMOKE"):
        env["REPRO_BENCH_SMOKE"] = "1"
    env["PYTHONPATH"] = str(REPO / "src")
    proc = subprocess.run(
        [
            sys.executable, str(BENCH_DYNAMIC),
            "--label", "smoke", "--mode", "serial", "--out", str(out),
        ],
        capture_output=True,
        text=True,
        env=env,
        cwd=str(REPO),
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr

    data = json.loads(out.read_text())
    record = data["smoke"]
    assert record["smoke"] is True
    rows = record["rows"]
    assert {r["stream"] for r in rows} == {
        "insert-heavy", "delete-heavy", "mixed"
    }
    # The harness asserts these before writing a row; re-check the output
    # so a silently weakened harness still fails here.
    for r in rows:
        assert r["matching_identical"] is True
        assert r["ledger_identical"] is True
        assert set(r["updates_per_sec"]) == {
            "object", "vector", "vector+native", "vector+native+edits",
            "vector+engine",
        }
    assert "overhead_fraction" in record["engine_overhead_w1"]


@pytest.mark.bench_smoke
@pytest.mark.skipif(
    os.environ.get("REPRO_BENCH_SMOKE") == "0",
    reason="REPRO_BENCH_SMOKE=0 explicitly disables the bench smoke run",
)
def test_bench_queries_smoke(tmp_path):
    out = tmp_path / "bench_queries.json"
    env = dict(os.environ)
    if not env.get("REPRO_BENCH_SMOKE"):
        env["REPRO_BENCH_SMOKE"] = "1"
    env["PYTHONPATH"] = str(REPO / "src")
    proc = subprocess.run(
        [
            sys.executable, str(BENCH_QUERIES),
            "--label", "smoke", "--out", str(out),
        ],
        capture_output=True,
        text=True,
        env=env,
        cwd=str(REPO),
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr

    data = json.loads(out.read_text())
    record = data["smoke"]
    assert record["smoke"] is True
    # The harness certifies before writing a row (sampled reads against
    # truncated oracle replays, the write-overhead bound); re-check the
    # output so a silently weakened harness still fails here.
    qps = record["qps"]
    assert qps["reads"] > 0 and qps["epochs_published"] == record["batches"]
    assert qps["certified_samples"] > 0
    assert qps["final_view_certified"] is True
    assert record["http_qps"]["final_view_certified"] is True
    wo = record["write_overhead"]
    assert wo["overhead_fraction"] <= wo["asserted_bound"]


@pytest.mark.bench_smoke
@pytest.mark.skipif(
    os.environ.get("REPRO_BENCH_SMOKE") == "0",
    reason="REPRO_BENCH_SMOKE=0 explicitly disables the bench smoke run",
)
def test_bench_kernels_smoke(tmp_path):
    out = tmp_path / "bench_kernels.json"
    env = dict(os.environ)
    if not env.get("REPRO_BENCH_SMOKE"):
        env["REPRO_BENCH_SMOKE"] = "1"
    env["PYTHONPATH"] = str(REPO / "src")
    proc = subprocess.run(
        [
            sys.executable, str(BENCH_KERNELS),
            "--label", "smoke", "--out", str(out),
        ],
        capture_output=True,
        text=True,
        env=env,
        cwd=str(REPO),
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr

    data = json.loads(out.read_text())
    record = data["smoke"]
    assert record["smoke"] is True
    assert record["native"]["backend"] in ("numba", "numpy")
    rows = record["rows"]
    # every registry kernel at every size, identity asserted pre-row
    kernels = {r["kernel"] for r in rows}
    assert kernels == {
        "group_index", "seg_gather_index", "dedup_first_index",
        "pack_index", "first_alive",
        "edit_add_level0", "edit_cross_scan", "edit_cross_sim",
        "edit_remove_match", "intern_localize",
    }
    for r in rows:
        assert r["numpy_sec"] > 0 and r["native_sec"] > 0
