"""Smoke-mode run of the hot-path benchmark harness.

``REPRO_BENCH_SMOKE=1`` caps every sweep in ``benchmarks/bench_hotpath.py``
to tiny sizes, so CI can exercise the full harness — workload generation,
replay, ledger capture, JSON output, and the seed-vs-after comparison
logic — in a couple of seconds without timing anything meaningful.
Deselect with ``-m "not bench_smoke"`` if even that is too much.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
BENCH = REPO / "benchmarks" / "bench_hotpath.py"


def _run(label: str, out: Path) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    # Respect an explicit REPRO_BENCH_SMOKE from the caller (CI can set it
    # once for the whole job); default to smoke mode only when unset/empty.
    if not env.get("REPRO_BENCH_SMOKE"):
        env["REPRO_BENCH_SMOKE"] = "1"
    env["PYTHONPATH"] = str(REPO / "src")
    return subprocess.run(
        [sys.executable, str(BENCH), "--label", label, "--out", str(out)],
        capture_output=True,
        text=True,
        env=env,
        cwd=str(REPO),
        timeout=300,
    )


@pytest.mark.bench_smoke
@pytest.mark.skipif(
    os.environ.get("REPRO_BENCH_SMOKE") == "0",
    reason="REPRO_BENCH_SMOKE=0 explicitly disables the bench smoke run",
)
def test_bench_hotpath_smoke(tmp_path):
    out = tmp_path / "bench.json"

    first = _run("seed", out)
    assert first.returncode == 0, first.stderr

    second = _run("array", out)
    assert second.returncode == 0, second.stderr

    data = json.loads(out.read_text())
    for label in ("seed", "array"):
        for exp in ("e1", "e5", "e9"):
            assert data[label][exp], f"{label}/{exp} produced no rows"
    # Both labels replay identical seeded workloads in the same codebase,
    # so the comparison rows must report exact ledger parity.
    for row in data["comparison"]["e1"]:
        assert row["work_delta"] == 0
        assert row["depth_delta"] == 0
