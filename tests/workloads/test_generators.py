"""Tests for the workload edge generators."""

import numpy as np
import pytest

from repro.hypergraph.hypergraph import Hypergraph
from repro.workloads.generators import (
    complete_graph_edges,
    cycle_edges,
    erdos_renyi_edges,
    grid_edges,
    path_edges,
    preferential_attachment_edges,
    random_hypergraph_edges,
    set_cover_instance,
    star_edges,
)


class TestErdosRenyi:
    def test_count_and_rank(self, rng):
        edges = erdos_renyi_edges(20, 50, rng)
        assert len(edges) == 50
        assert all(e.cardinality == 2 for e in edges)

    def test_no_parallel_by_default(self, rng):
        edges = erdos_renyi_edges(10, 45, rng)  # all possible pairs
        assert len({e.vertices for e in edges}) == 45

    def test_too_many_edges_rejected(self, rng):
        with pytest.raises(ValueError):
            erdos_renyi_edges(5, 11, rng)

    def test_allow_parallel(self, rng):
        edges = erdos_renyi_edges(3, 20, rng, allow_parallel=True)
        assert len(edges) == 20

    def test_start_eid(self, rng):
        edges = erdos_renyi_edges(10, 5, rng, start_eid=100)
        assert [e.eid for e in edges] == [100, 101, 102, 103, 104]

    def test_deterministic(self):
        a = erdos_renyi_edges(20, 30, np.random.default_rng(5))
        b = erdos_renyi_edges(20, 30, np.random.default_rng(5))
        assert [e.vertices for e in a] == [e.vertices for e in b]


class TestRandomHypergraph:
    def test_uniform_rank(self, rng):
        edges = random_hypergraph_edges(20, 40, 4, rng)
        assert all(e.cardinality == 4 for e in edges)

    def test_mixed_rank(self, rng):
        edges = random_hypergraph_edges(20, 200, 4, rng, uniform=False)
        cards = {e.cardinality for e in edges}
        assert cards <= {2, 3, 4}
        assert len(cards) > 1

    def test_invalid_rank(self, rng):
        with pytest.raises(ValueError):
            random_hypergraph_edges(5, 10, 6, rng)


class TestFixedFamilies:
    def test_path(self):
        edges = path_edges(5)
        assert len(edges) == 4
        assert edges[0].vertices == (0, 1)

    def test_cycle(self):
        edges = cycle_edges(5)
        assert len(edges) == 5
        with pytest.raises(ValueError):
            cycle_edges(2)

    def test_grid(self):
        edges = grid_edges(3, 4)
        # 3*3 horizontal + 2*4 vertical = 17
        assert len(edges) == 17
        g = Hypergraph(edges)
        assert g.num_vertices == 12

    def test_star(self):
        edges = star_edges(10)
        assert len(edges) == 9
        assert all(0 in e.vertices for e in edges)

    def test_complete(self):
        edges = complete_graph_edges(6)
        assert len(edges) == 15
        assert len({e.vertices for e in edges}) == 15


class TestPreferentialAttachment:
    def test_shape(self, rng):
        edges = preferential_attachment_edges(50, 3, rng)
        g = Hypergraph(edges)
        assert g.num_vertices <= 50
        assert len(edges) > 50  # ~ (n - attach) * attach

    def test_skewed_degrees(self, rng):
        edges = preferential_attachment_edges(200, 2, rng)
        g = Hypergraph(edges)
        degs = sorted((g.degree(v) for v in g.vertices()), reverse=True)
        assert degs[0] > 3 * degs[len(degs) // 2]


class TestSetCoverInstance:
    def test_shape(self, rng):
        edges = set_cover_instance(10, 30, 3, rng)
        assert len(edges) == 30
        assert all(e.cardinality == 3 for e in edges)
        assert all(max(e.vertices) < 10 for e in edges)

    def test_invalid_frequency(self, rng):
        with pytest.raises(ValueError):
            set_cover_instance(3, 10, 5, rng)
