"""Tests for the stream runner."""

import numpy as np
import pytest

from repro.core.dynamic_matching import DynamicMatching
from repro.workloads.generators import erdos_renyi_edges
from repro.workloads.runner import run_stream, summarize
from repro.workloads.streams import insert_then_delete_stream


@pytest.fixture
def small_stream(rng):
    edges = erdos_renyi_edges(12, 40, rng)
    return insert_then_delete_stream(edges, 10)


class TestRunStream:
    def test_record_per_batch(self, small_stream):
        recs = run_stream(DynamicMatching(seed=0), small_stream)
        assert len(recs) == len(small_stream)
        assert all(r.work >= 0 for r in recs)

    def test_check_mode(self, small_stream):
        recs = run_stream(DynamicMatching(seed=0), small_stream, check=True)
        assert recs[-1].live_edges == 0

    def test_kinds_match(self, small_stream):
        recs = run_stream(DynamicMatching(seed=0), small_stream)
        assert [r.kind for r in recs] == [b.kind for b in small_stream]

    def test_work_per_update(self, small_stream):
        recs = run_stream(DynamicMatching(seed=0), small_stream)
        for r in recs:
            assert r.work_per_update == (r.work / r.size if r.size else 0.0)


class TestSummarize:
    def test_totals(self, small_stream):
        recs = run_stream(DynamicMatching(seed=0), small_stream)
        s = summarize(recs)
        assert s["batches"] == len(small_stream)
        assert s["updates"] == 80
        assert s["total_work"] == pytest.approx(sum(r.work for r in recs))
        assert s["max_depth"] == max(r.depth for r in recs)

    def test_empty(self):
        s = summarize([])
        assert s["updates"] == 0 and s["work_per_update"] == 0.0
