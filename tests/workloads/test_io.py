"""Tests for edge-list and update-stream file formats."""

import io

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.hypergraph.edge import Edge
from repro.workloads.generators import erdos_renyi_edges, random_hypergraph_edges
from repro.workloads.io import (
    read_edge_list,
    read_stream,
    stream_from_string,
    stream_to_string,
    write_edge_list,
    write_stream,
)
from repro.workloads.streams import UpdateBatch, insert_then_delete_stream


class TestEdgeList:
    def test_roundtrip(self, tmp_path, rng):
        edges = random_hypergraph_edges(20, 30, 4, rng, uniform=False)
        path = str(tmp_path / "g.txt")
        write_edge_list(path, edges)
        back = read_edge_list(path)
        assert [e.vertices for e in back] == [e.vertices for e in edges]

    def test_comments_and_blanks(self):
        text = "# header\n\n0 1\n 2 3  # trailing\n"
        edges = read_edge_list(io.StringIO(text))
        assert [e.vertices for e in edges] == [(0, 1), (2, 3)]

    def test_start_eid(self):
        edges = read_edge_list(io.StringIO("0 1\n1 2\n"), start_eid=10)
        assert [e.eid for e in edges] == [10, 11]

    def test_bad_vertex_rejected(self):
        with pytest.raises(ValueError, match="line 1"):
            read_edge_list(io.StringIO("a b\n"))

    def test_hyperedge_line(self):
        edges = read_edge_list(io.StringIO("1 2 3 4\n"))
        assert edges[0].cardinality == 4


class TestStreamFormat:
    def test_roundtrip_via_file(self, tmp_path, rng):
        edges = erdos_renyi_edges(15, 40, rng)
        stream = insert_then_delete_stream(edges, 12)
        path = str(tmp_path / "s.txt")
        write_stream(path, stream)
        back = read_stream(path)
        assert len(back) == len(stream)
        for a, b in zip(back, stream):
            assert a.kind == b.kind
            if a.kind == "insert":
                assert [e.eid for e in a.edges] == [e.eid for e in b.edges]
                assert [e.vertices for e in a.edges] == [e.vertices for e in b.edges]
            else:
                assert a.eids == b.eids

    def test_string_helpers(self, rng):
        stream = insert_then_delete_stream(erdos_renyi_edges(10, 15, rng), 5)
        text = stream_to_string(stream)
        back = stream_from_string(text)
        assert stream_to_string(back) == text

    def test_empty_batches_preserved(self):
        stream = [UpdateBatch.insert([]), UpdateBatch.delete([])]
        back = stream_from_string(stream_to_string(stream))
        assert [b.kind for b in back] == ["insert", "delete"]
        assert back[0].size == 0 and back[1].size == 0

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError, match="unknown op"):
            stream_from_string("* 1\n")

    def test_bad_insert_item_rejected(self):
        with pytest.raises(ValueError, match="bad insert item"):
            stream_from_string("+ notanedge\n")

    def test_vertexless_edge_rejected(self):
        with pytest.raises(ValueError, match="no vertices"):
            stream_from_string("+ 3:\n")

    def test_bad_delete_id_rejected(self):
        with pytest.raises(ValueError, match="bad edge id"):
            stream_from_string("- x\n")

    def test_comments_skipped(self):
        back = stream_from_string("# note\n+ 0:1,2\n# another\n- 0\n")
        assert len(back) == 2


@given(st.data())
@settings(max_examples=30, deadline=None)
def test_property_stream_roundtrip(data):
    n_batches = data.draw(st.integers(0, 6))
    stream = []
    next_eid = 0
    live = []
    for _ in range(n_batches):
        if not live or data.draw(st.booleans()):
            k = data.draw(st.integers(0, 5))
            edges = []
            for _ in range(k):
                vs = data.draw(
                    st.lists(st.integers(0, 9), min_size=1, max_size=3, unique=True)
                )
                edges.append(Edge(next_eid, vs))
                next_eid += 1
            stream.append(UpdateBatch.insert(edges))
            live += [e.eid for e in edges]
        else:
            k = data.draw(st.integers(1, len(live)))
            stream.append(UpdateBatch.delete(live[:k]))
            live = live[k:]
    text = stream_to_string(stream)
    assert stream_to_string(stream_from_string(text)) == text
