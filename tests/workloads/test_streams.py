"""Tests for update streams and adversaries."""

import numpy as np
import pytest

from repro.hypergraph.edge import Edge
from repro.workloads.adversary import (
    FifoAdversary,
    LifoAdversary,
    RandomOrderAdversary,
    VertexTargetingAdversary,
)
from repro.workloads.generators import erdos_renyi_edges, star_edges
from repro.workloads.streams import (
    UpdateBatch,
    churn_stream,
    insert_then_delete_stream,
    sliding_window_stream,
    total_updates,
)


def _replay_live_set(stream):
    """Replay a stream and return the live edge-id set trajectory."""
    live = set()
    for b in stream:
        if b.kind == "insert":
            for e in b.edges:
                assert e.eid not in live, "inserted a live id"
                live.add(e.eid)
        else:
            for eid in b.eids:
                assert eid in live, "deleted a non-live id"
                live.discard(eid)
    return live


class TestUpdateBatch:
    def test_insert_constructor(self):
        b = UpdateBatch.insert([Edge(0, (1, 2))])
        assert b.kind == "insert" and b.size == 1

    def test_delete_constructor(self):
        b = UpdateBatch.delete([5, 6])
        assert b.kind == "delete" and b.size == 2

    def test_invalid_kind(self):
        with pytest.raises(ValueError):
            UpdateBatch(kind="upsert")

    def test_mixed_payload_rejected(self):
        with pytest.raises(ValueError):
            UpdateBatch(kind="insert", eids=(1,))
        with pytest.raises(ValueError):
            UpdateBatch(kind="delete", edges=(Edge(0, (1, 2)),))


class TestInsertThenDelete:
    def test_empty_to_empty(self, rng):
        edges = erdos_renyi_edges(10, 30, rng)
        stream = insert_then_delete_stream(edges, 7)
        assert _replay_live_set(stream) == set()
        assert total_updates(stream) == 60

    def test_batch_sizes(self, rng):
        edges = erdos_renyi_edges(10, 30, rng)
        stream = insert_then_delete_stream(edges, 7)
        sizes = [b.size for b in stream if b.kind == "insert"]
        assert sizes == [7, 7, 7, 7, 2]

    def test_respects_adversary_order(self, rng):
        edges = erdos_renyi_edges(10, 20, rng)
        stream = insert_then_delete_stream(edges, 100, FifoAdversary())
        deletes = [b for b in stream if b.kind == "delete"]
        assert list(deletes[0].eids) == [e.eid for e in edges]


class TestSlidingWindow:
    def test_window_respected_and_drains(self, rng):
        edges = erdos_renyi_edges(20, 100, rng)
        stream = sliding_window_stream(edges, window=30, batch_size=10)
        live = set()
        for b in stream:
            if b.kind == "insert":
                live.update(e.eid for e in b.edges)
            else:
                live.difference_update(b.eids)
            assert len(live) <= 40  # window + one batch in flight
        assert live == set()

    def test_fifo_eviction(self, rng):
        edges = erdos_renyi_edges(20, 50, rng)
        stream = sliding_window_stream(edges, window=20, batch_size=10)
        first_delete = next(b for b in stream if b.kind == "delete")
        assert list(first_delete.eids) == [e.eid for e in edges[:10]]


class TestChurn:
    def test_empty_to_empty(self):
        def factory(count, start_eid):
            return [Edge(start_eid + i, (i % 9, (i + 1) % 9 + 9)) for i in range(count)]

        stream = churn_stream(factory, initial=40, steps=8, batch_size=10,
                              rng=np.random.default_rng(3))
        assert _replay_live_set(stream) == set()

    def test_live_count_roughly_constant(self):
        def factory(count, start_eid):
            return [Edge(start_eid + i, (i % 9, (i + 1) % 9 + 9)) for i in range(count)]

        stream = churn_stream(factory, initial=40, steps=8, batch_size=10,
                              rng=np.random.default_rng(3))
        live = 0
        peaks = []
        for b in stream[: 1 + 2 * 8]:  # before the drain phase
            live += b.size if b.kind == "insert" else -b.size
            peaks.append(live)
        assert min(peaks) >= 30 and max(peaks) <= 55


class TestAdversaries:
    def test_fifo(self):
        edges = [Edge(i, (i, i + 1)) for i in range(5)]
        assert FifoAdversary().deletion_order(edges) == [0, 1, 2, 3, 4]

    def test_lifo(self):
        edges = [Edge(i, (i, i + 1)) for i in range(5)]
        assert LifoAdversary().deletion_order(edges) == [4, 3, 2, 1, 0]

    def test_random_is_permutation(self):
        edges = [Edge(i, (i, i + 1)) for i in range(20)]
        order = RandomOrderAdversary(np.random.default_rng(1)).deletion_order(edges)
        assert sorted(order) == list(range(20))

    def test_vertex_targeting_clears_hub_first(self):
        edges = star_edges(10) + [Edge(100, (50, 51))]
        order = VertexTargetingAdversary(np.random.default_rng(0)).deletion_order(edges)
        # all 9 star edges (touching hub 0, degree 9) come before the stray
        assert set(order[:9]) == {e.eid for e in star_edges(10)}
        assert order[-1] == 100

    def test_vertex_targeting_is_permutation(self, rng):
        edges = erdos_renyi_edges(15, 40, rng)
        order = VertexTargetingAdversary(np.random.default_rng(2)).deletion_order(edges)
        assert sorted(order) == sorted(e.eid for e in edges)
