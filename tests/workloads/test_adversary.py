"""Tests for the oblivious deletion adversaries.

Two properties matter for the paper's model: adversaries are
*deterministic under a fixed seed* (an oblivious adversary is a fixed
function of the update stream, so replays — including durability-layer
recovery replays — see the identical stream), and they only ever
reference edges that were actually handed to them.
"""

import numpy as np
import pytest

from repro.hypergraph.edge import Edge
from repro.workloads.adversary import (
    ALL_ADVERSARIES,
    FifoAdversary,
    LifoAdversary,
    RandomOrderAdversary,
    VertexTargetingAdversary,
)
from repro.workloads.streams import insert_then_delete_stream


def make_edges(n=40, n_vertices=15, rank=3, seed=0):
    rng = np.random.default_rng(seed)
    return [
        Edge(i, rng.choice(n_vertices, size=rank, replace=False).tolist())
        for i in range(n)
    ]


def build(cls, seed=123):
    if cls in (RandomOrderAdversary, VertexTargetingAdversary):
        return cls(np.random.default_rng(seed))
    return cls()


class TestDeterministicReplay:
    @pytest.mark.parametrize("cls", ALL_ADVERSARIES)
    def test_same_seed_same_order(self, cls):
        edges = make_edges()
        assert build(cls).deletion_order(edges) == build(cls).deletion_order(edges)

    @pytest.mark.parametrize("cls", ALL_ADVERSARIES)
    def test_stream_replay_is_identical(self, cls):
        edges = make_edges(seed=7)
        streams = [
            insert_then_delete_stream(edges, 8, build(cls)) for _ in range(2)
        ]
        assert len(streams[0]) == len(streams[1])
        for a, b in zip(*streams):
            assert a.kind == b.kind
            assert a.eids == b.eids
            assert [e.eid for e in a.edges] == [e.eid for e in b.edges]

    def test_random_order_varies_with_seed(self):
        edges = make_edges(n=30)
        orders = {
            tuple(RandomOrderAdversary(np.random.default_rng(s)).deletion_order(edges))
            for s in range(5)
        }
        assert len(orders) > 1, "seeded shuffles should differ across seeds"


class TestNoPhantomEdges:
    @pytest.mark.parametrize("cls", ALL_ADVERSARIES)
    def test_order_is_permutation_of_given_edges(self, cls):
        edges = make_edges(seed=11)
        order = build(cls).deletion_order(edges)
        assert sorted(order) == sorted(e.eid for e in edges)

    @pytest.mark.parametrize("cls", ALL_ADVERSARIES)
    def test_stream_never_deletes_uninserted(self, cls):
        edges = make_edges(seed=13)
        stream = insert_then_delete_stream(edges, 6, build(cls))
        inserted, deleted = set(), []
        for batch in stream:
            if batch.kind == "insert":
                inserted.update(e.eid for e in batch.edges)
            else:
                for eid in batch.eids:
                    assert eid in inserted, f"deleted never-inserted edge {eid}"
                    deleted.append(eid)
        assert sorted(deleted) == sorted(e.eid for e in edges)
        assert len(deleted) == len(set(deleted)), "edge deleted twice"

    @pytest.mark.parametrize("cls", ALL_ADVERSARIES)
    def test_empty_edge_list(self, cls):
        assert build(cls).deletion_order([]) == []


class TestOrderShapes:
    def test_fifo_is_insertion_order(self):
        edges = make_edges(n=10)
        assert FifoAdversary().deletion_order(edges) == [e.eid for e in edges]

    def test_lifo_is_reverse_insertion_order(self):
        edges = make_edges(n=10)
        assert LifoAdversary().deletion_order(edges) == [e.eid for e in reversed(edges)]

    def test_vertex_targeting_clears_densest_vertex_first(self):
        # star on vertex 0 plus one disjoint edge: the star edges (all
        # touching the unique densest vertex) must come before the rest.
        star = [Edge(i, [0, 100 + i]) for i in range(6)]
        lone = [Edge(99, [200, 201])]
        order = VertexTargetingAdversary(np.random.default_rng(0)).deletion_order(
            star + lone
        )
        assert set(order[:6]) == {e.eid for e in star}
        assert order[6] == 99
