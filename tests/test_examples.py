"""Smoke tests: every example script runs to completion and produces its
headline output.  Kept fast by running each in-process via runpy."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script, capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", [str(script)])
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert len(out) > 100, f"{script.name} produced almost no output"


def test_expected_examples_present():
    names = {p.stem for p in EXAMPLES}
    assert {
        "quickstart",
        "social_network_stream",
        "dynamic_set_cover",
        "adversarial_robustness",
        "hypergraph_scheduling",
        "checkpoint_service",
    } <= names


def test_quickstart_shows_costs(capsys, monkeypatch):
    script = next(p for p in EXAMPLES if p.stem == "quickstart")
    monkeypatch.setattr(sys, "argv", [str(script)])
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert "work" in out and "matching" in out
