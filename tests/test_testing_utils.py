"""Tests for the public testing utilities (and, through them, another
layer of randomized workout over every algorithm)."""

import numpy as np
import pytest

from repro.baselines import GTStyle, NaiveDynamic, SolomonStyle, StaticRecompute
from repro.core.dynamic_matching import DynamicMatching
from repro.testing import WorkoutResult, drain, random_workout


class TestRandomWorkout:
    def test_runs_and_reports(self):
        result = random_workout(lambda: DynamicMatching(rank=2, seed=0), seed=1,
                                steps=25)
        assert result.steps == 25
        assert result.inserted >= result.deleted

    @pytest.mark.parametrize("seed", range(4))
    def test_paper_algorithm_many_seeds(self, seed):
        random_workout(
            lambda: DynamicMatching(rank=3, seed=seed), seed=seed + 100,
            steps=30, max_rank=3,
        )

    @pytest.mark.parametrize(
        "make",
        [
            pytest.param(lambda: NaiveDynamic(rank=3), id="naive"),
            pytest.param(lambda: SolomonStyle(rank=3, seed=2), id="solomon"),
            pytest.param(lambda: StaticRecompute(rank=3, seed=2), id="static"),
            pytest.param(lambda: GTStyle(rank=3, seed=2), id="gt"),
        ],
    )
    def test_baselines_survive_workout(self, make):
        random_workout(make, seed=9, steps=25, max_rank=3)

    def test_matched_bias_full(self):
        """All deletes target matches: maximal stress on the settle path."""
        random_workout(
            lambda: DynamicMatching(rank=2, seed=4), seed=5, steps=25,
            matched_bias=1.0,
        )

    def test_detects_broken_algorithm(self):
        """A wrapper that forgets to rematch must be caught."""

        class Broken(DynamicMatching):
            def delete_edges(self, eids):
                # drop edges from the registry behind the algorithm's back
                for eid in list(eids):
                    rec = self.structure.recs.get(eid)
                    if rec is not None and rec.eid not in self.structure.matched:
                        continue
                # then delete honestly but ALSO hide one matched edge
                stats = super().delete_edges(eids)
                if self.structure.matched:
                    victim = next(iter(self.structure.matched))
                    self.structure.matched.discard(victim)  # lie about matching
                return stats

        with pytest.raises(AssertionError):
            random_workout(lambda: Broken(rank=2, seed=0), seed=3, steps=30,
                           check_invariants=False)


class TestDrain:
    def test_drain_empties(self):
        dm = DynamicMatching(rank=2, seed=0)
        from repro.hypergraph.edge import Edge

        dm.insert_edges([Edge(i, (i, i + 1)) for i in range(10)])
        drain(dm)
        assert len(dm) == 0

    def test_drain_empty_is_noop(self):
        drain(DynamicMatching(rank=2, seed=0))
