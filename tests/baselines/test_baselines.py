"""Correctness tests for every baseline algorithm.

All four baselines must maintain a maximal matching under arbitrary batch
streams — they only differ in cost profile.  A shared test matrix runs the
same scripts over each.
"""

import numpy as np
import pytest

from repro.baselines import BGSStyle, GTStyle, NaiveDynamic, SolomonStyle, StaticRecompute
from repro.core.dynamic_matching import DynamicMatching
from repro.hypergraph.edge import Edge
from repro.hypergraph.hypergraph import Hypergraph
from repro.workloads.generators import (
    erdos_renyi_edges,
    random_hypergraph_edges,
    star_edges,
)

ALGOS = [
    pytest.param(lambda: StaticRecompute(rank=3, seed=0), id="static"),
    pytest.param(lambda: NaiveDynamic(rank=3), id="naive"),
    pytest.param(lambda: SolomonStyle(rank=3, seed=0), id="solomon"),
    pytest.param(lambda: GTStyle(rank=3, seed=0), id="gt"),
    pytest.param(lambda: DynamicMatching(rank=3, seed=0), id="paper"),
]


def _check(algo, mirror):
    assert mirror.is_maximal_matching(algo.matched_ids())


@pytest.mark.parametrize("make", ALGOS)
class TestSharedCorrectness:
    def test_insert_then_delete_everything(self, make):
        algo = make()
        edges = erdos_renyi_edges(15, 50, np.random.default_rng(1))
        mirror = Hypergraph(edges)
        algo.insert_edges(edges)
        _check(algo, mirror)
        ids = [e.eid for e in edges]
        rng = np.random.default_rng(2)
        rng.shuffle(ids)
        for i in range(0, len(ids), 12):
            batch = ids[i : i + 12]
            algo.delete_edges(batch)
            mirror.remove_edges(batch)
            _check(algo, mirror)
        assert len(algo) == 0

    def test_hypergraph_stream(self, make):
        algo = make()
        edges = random_hypergraph_edges(12, 60, 3, np.random.default_rng(4), uniform=False)
        mirror = Hypergraph(edges)
        algo.insert_edges(edges)
        _check(algo, mirror)
        for i in range(0, 60, 20):
            batch = [e.eid for e in edges[i : i + 20]]
            algo.delete_edges(batch)
            mirror.remove_edges(batch)
            _check(algo, mirror)

    def test_star_matched_churn(self, make):
        algo = make()
        edges = star_edges(30)
        mirror = Hypergraph(edges)
        algo.insert_edges(edges)
        for _ in range(10):
            matched = algo.matched_ids()
            if not matched:
                break
            algo.delete_edges(matched)
            mirror.remove_edges(matched)
            _check(algo, mirror)

    def test_interleaved_inserts(self, make):
        algo = make()
        mirror = Hypergraph()
        rng = np.random.default_rng(9)
        for step in range(5):
            edges = erdos_renyi_edges(
                10, 15, rng, start_eid=step * 100, allow_parallel=True
            )
            algo.insert_edges(edges)
            mirror.add_edges(edges)
            _check(algo, mirror)
            live = mirror.edge_ids()
            kill = [live[i] for i in rng.choice(len(live), size=min(8, len(live)), replace=False)]
            algo.delete_edges(kill)
            mirror.remove_edges(kill)
            _check(algo, mirror)

    def test_num_updates_counted(self, make):
        algo = make()
        algo.insert_edges([Edge(0, (1, 2)), Edge(1, (3, 4))])
        algo.delete_edges([0])
        assert algo.num_updates == 3


class TestBaselineSpecifics:
    def test_naive_is_deterministic(self):
        runs = []
        for _ in range(2):
            algo = NaiveDynamic(rank=2)
            algo.insert_edges(star_edges(20))
            algo.delete_edges(algo.matched_ids())
            runs.append(tuple(algo.matched_ids()))
        assert runs[0] == runs[1]

    def test_naive_pays_degree_on_star(self):
        """Deleting the star's match costs ~degree work every time."""
        algo = NaiveDynamic(rank=2)
        n = 200
        algo.insert_edges(star_edges(n))
        w0 = algo.ledger.work
        algo.delete_edges(algo.matched_ids())
        assert algo.ledger.work - w0 >= n / 2  # full neighbourhood scan

    def test_static_recompute_work_scales_with_graph(self):
        small, large = Hypergraph(), Hypergraph()
        costs = {}
        for m in (50, 400):
            algo = StaticRecompute(rank=2, seed=0)
            algo.insert_edges(erdos_renyi_edges(int(m**0.8), m, np.random.default_rng(m)))
            w0 = algo.ledger.work
            algo.delete_edges([algo.matched_ids()[0]])
            costs[m] = algo.ledger.work - w0
        assert costs[400] > 4 * costs[50]  # per-batch cost grows with m

    def test_solomon_random_mate_varies(self):
        """The random mate must differ across seeds somewhere."""
        outcomes = set()
        for seed in range(10):
            algo = SolomonStyle(rank=2, seed=seed)
            algo.insert_edges(star_edges(12))
            algo.delete_edges(algo.matched_ids())
            outcomes.add(tuple(algo.matched_ids()))
        assert len(outcomes) > 1

    def test_gt_style_is_always_heavy(self):
        algo = GTStyle(rank=2, seed=0)
        assert algo.structure.heavy_factor == 0.0
        algo.insert_edges([Edge(0, (1, 2)), Edge(1, (2, 3))])
        stats = algo.delete_edges([algo.matched_ids()[0]])
        # with heavy_factor 0 the deleted match must hit the settle path
        assert stats.heavy_matches >= 1

    def test_gt_does_more_work_than_lazy(self):
        """The non-lazy variant pays more per update on matched churn."""

        def run(cls):
            algo = cls(rank=2, seed=0)
            algo.insert_edges(erdos_renyi_edges(20, 150, np.random.default_rng(0)))
            ids = list(range(150))
            np.random.default_rng(1).shuffle(ids)
            for i in range(0, 150, 15):
                algo.delete_edges(ids[i : i + 15])
            return algo.ledger.work

        assert run(GTStyle) > run(DynamicMatching)


class TestBaselineValidation:
    def test_rank_enforced(self):
        algo = NaiveDynamic(rank=2)
        with pytest.raises(ValueError):
            algo.insert_edges([Edge(0, (1, 2, 3))])

    def test_invalid_rank(self):
        with pytest.raises(ValueError):
            NaiveDynamic(rank=0)

    def test_check_invariants_passes(self):
        algo = SolomonStyle(rank=2, seed=1)
        algo.insert_edges(erdos_renyi_edges(10, 20, np.random.default_rng(3)))
        algo.check_invariants()
