"""Tests specific to the BGS-style two-level baseline."""

import numpy as np
import pytest

from repro.baselines.bgs import BGSStyle
from repro.hypergraph.edge import Edge
from repro.hypergraph.hypergraph import Hypergraph
from repro.testing import random_workout
from repro.workloads.generators import erdos_renyi_edges, star_edges


class TestBasics:
    def test_graphs_only(self):
        with pytest.raises(ValueError):
            BGSStyle(rank=3)

    def test_insert_matches_free_edges(self):
        algo = BGSStyle(seed=0)
        algo.insert_edges([Edge(0, (1, 2)), Edge(1, (3, 4))])
        assert sorted(algo.matched_ids()) == [0, 1]
        assert algo.level == {0: 0, 1: 0}
        algo.check_invariants()

    def test_maximality_through_random_churn(self):
        rng = np.random.default_rng(1)
        edges = erdos_renyi_edges(20, 100, rng)
        algo = BGSStyle(seed=2)
        mirror = Hypergraph(edges)
        algo.insert_edges(edges)
        ids = [e.eid for e in edges]
        rng.shuffle(ids)
        for i in range(0, len(ids), 20):
            batch = ids[i : i + 20]
            algo.delete_edges(batch)
            mirror.remove_edges(batch)
            assert mirror.is_maximal_matching(algo.matched_ids())
            algo.check_invariants()
        assert len(algo) == 0


class TestLevelMechanics:
    def test_high_degree_settle_reaches_level_one(self):
        """Killing the star's match on a large star triggers the random
        level-1 settle (degree >= sqrt(m))."""
        algo = BGSStyle(seed=3)
        algo.insert_edges(star_edges(80))
        algo.delete_edges(algo.matched_ids())
        assert algo.matched_ids(), "star must stay matched"
        assert 1 in set(algo.level.values())
        algo.check_invariants()

    def test_low_degree_stays_level_zero(self):
        algo = BGSStyle(seed=4)
        algo.insert_edges([Edge(0, (1, 2)), Edge(1, (2, 3))])
        algo.delete_edges(algo.matched_ids())
        assert all(l == 0 for l in algo.level.values())

    def test_takeover_preserves_maximality(self):
        """Engineer a takeover: high-degree hub whose random mate is
        already matched at level 0; repeat over seeds so the takeover
        branch certainly fires."""
        took_over = False
        for seed in range(30):
            algo = BGSStyle(seed=seed)
            star = star_edges(60)  # hub 0
            side = [Edge(1000 + i, (i + 1, 500 + i)) for i in range(59)]
            algo.insert_edges(star + side)
            mirror = Hypergraph(star + side)
            hub_match = algo.cover.get(0)
            if hub_match is None:
                continue
            algo.delete_edges([hub_match])
            mirror.remove_edge(hub_match)
            assert mirror.is_maximal_matching(algo.matched_ids())
            algo.check_invariants()
            if 1 in set(algo.level.values()):
                took_over = True
        assert took_over

    def test_random_mate_varies(self):
        mates = set()
        for seed in range(20):
            algo = BGSStyle(seed=seed)
            algo.insert_edges(star_edges(50))
            algo.delete_edges(algo.matched_ids())
            mates.update(algo.matched_ids())
        assert len(mates) > 3


class TestWorkout:
    @pytest.mark.parametrize("seed", range(3))
    def test_random_workout(self, seed):
        random_workout(lambda: BGSStyle(seed=seed), seed=seed + 40, steps=30,
                       max_rank=2)
