"""Tests for batch-dynamic r-approximate set cover (Corollary 1.3)."""

import numpy as np
import pytest

from repro.applications.set_cover import DynamicSetCover
from repro.workloads.generators import set_cover_instance


class TestBasics:
    def test_single_element(self):
        sc = DynamicSetCover(max_frequency=2, seed=0)
        sc.add_elements({1: [10, 20]})
        assert sc.is_covered(1)
        assert sc.cover() <= {10, 20}

    def test_add_remove_roundtrip(self):
        sc = DynamicSetCover(max_frequency=2, seed=0)
        sc.add_elements({1: [10, 20], 2: [20, 30]})
        sc.remove_elements([1, 2])
        assert sc.num_elements == 0
        assert sc.cover() == set()

    def test_duplicate_element_rejected(self):
        sc = DynamicSetCover(max_frequency=2, seed=0)
        sc.add_elements({1: [10, 20]})
        with pytest.raises(KeyError):
            sc.add_elements({1: [30, 40]})

    def test_remove_absent_rejected(self):
        sc = DynamicSetCover(max_frequency=2, seed=0)
        with pytest.raises(KeyError):
            sc.remove_elements([99])

    def test_uncoverable_element_rejected(self):
        sc = DynamicSetCover(max_frequency=2, seed=0)
        with pytest.raises(ValueError):
            sc.add_elements({1: []})

    def test_frequency_bound_enforced(self):
        sc = DynamicSetCover(max_frequency=2, seed=0)
        with pytest.raises(ValueError):
            sc.add_elements({1: [10, 20, 30]})


class TestCoverage:
    @pytest.mark.parametrize("freq", [2, 3, 4])
    def test_all_elements_always_covered(self, freq):
        rng = np.random.default_rng(freq)
        elems = set_cover_instance(15, 80, freq, rng)
        sc = DynamicSetCover(max_frequency=freq, seed=freq)
        sc.add_elements({e.eid: list(e.vertices) for e in elems})
        sc.check_invariants()  # asserts every element covered
        # churn: remove half, re-check, remove rest
        ids = [e.eid for e in elems]
        rng.shuffle(ids)
        sc.remove_elements(ids[:40])
        sc.check_invariants()
        sc.remove_elements(ids[40:])
        assert sc.cover_size() == 0

    def test_batch_updates_keep_coverage(self):
        rng = np.random.default_rng(0)
        sc = DynamicSetCover(max_frequency=3, seed=1)
        next_id = 0
        live = []
        for step in range(8):
            batch = set_cover_instance(12, 15, 3, rng, start_eid=next_id)
            next_id += 15
            sc.add_elements({e.eid: list(e.vertices) for e in batch})
            live += [e.eid for e in batch]
            sc.check_invariants()
            kill = [live[i] for i in rng.choice(len(live), size=10, replace=False)]
            live = [x for x in live if x not in set(kill)]
            sc.remove_elements(kill)
            sc.check_invariants()


class TestApproximation:
    @pytest.mark.parametrize("freq", [2, 3])
    def test_cover_within_r_times_matching_bound(self, freq):
        """|cover| <= r * (matching size) and matching size <= OPT."""
        rng = np.random.default_rng(freq + 10)
        elems = set_cover_instance(20, 100, freq, rng)
        sc = DynamicSetCover(max_frequency=freq, seed=2)
        sc.add_elements({e.eid: list(e.vertices) for e in elems})
        assert sc.cover_size() <= freq * sc.approximation_bound()

    def test_matched_elements_are_disjoint_certificate(self):
        rng = np.random.default_rng(5)
        elems = set_cover_instance(12, 60, 3, rng)
        sc = DynamicSetCover(max_frequency=3, seed=3)
        sc.add_elements({e.eid: list(e.vertices) for e in elems})
        matched = sc.matching.matching()
        used: set = set()
        for e in matched:
            assert not (used & set(e.vertices)), "matched elements share a set"
            used.update(e.vertices)


class TestCostExposure:
    def test_ledger_accessible(self):
        sc = DynamicSetCover(max_frequency=2, seed=0)
        sc.add_elements({1: [10, 20]})
        assert sc.ledger.work > 0
