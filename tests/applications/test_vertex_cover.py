"""Tests for batch-dynamic 2-approximate vertex cover."""

import numpy as np
import pytest

from repro.applications.vertex_cover import DynamicVertexCover
from repro.hypergraph.edge import Edge
from repro.workloads.generators import erdos_renyi_edges, star_edges


class TestBasics:
    def test_single_edge(self):
        vc = DynamicVertexCover(seed=0)
        vc.insert_edges([Edge(0, (1, 2))])
        assert vc.cover() == {1, 2}
        assert vc.in_cover(1) and not vc.in_cover(3)

    def test_cover_size_is_twice_matching(self):
        vc = DynamicVertexCover(seed=0)
        vc.insert_edges(erdos_renyi_edges(20, 60, np.random.default_rng(1)))
        assert vc.cover_size() == 2 * vc.opt_lower_bound()

    def test_rejects_hyperedges(self):
        vc = DynamicVertexCover(seed=0)
        with pytest.raises(ValueError):
            vc.insert_edges([Edge(0, (1, 2, 3))])

    def test_empty_graph(self):
        vc = DynamicVertexCover(seed=0)
        assert vc.cover() == set()
        assert vc.covers_all_edges()


class TestDynamicBehaviour:
    def test_coverage_through_churn(self):
        rng = np.random.default_rng(3)
        edges = erdos_renyi_edges(25, 120, rng)
        vc = DynamicVertexCover(seed=1)
        vc.insert_edges(edges)
        vc.check_invariants()
        ids = [e.eid for e in edges]
        rng.shuffle(ids)
        for i in range(0, len(ids), 30):
            vc.delete_edges(ids[i : i + 30])
            vc.check_invariants()
        assert vc.num_edges == 0

    def test_star_cover_is_small(self):
        """On a star the cover is one matched edge's endpoints — near OPT=1."""
        vc = DynamicVertexCover(seed=2)
        vc.insert_edges(star_edges(50))
        assert vc.cover_size() == 2
        assert vc.opt_lower_bound() == 1

    def test_two_approximation_vs_exact(self):
        """Compare against the exact minimum via brute force (tiny graph)."""
        import itertools

        edges = erdos_renyi_edges(8, 12, np.random.default_rng(5))
        vc = DynamicVertexCover(seed=3)
        vc.insert_edges(edges)
        vertices = sorted({v for e in edges for v in e.vertices})
        opt = None
        for k in range(len(vertices) + 1):
            for combo in itertools.combinations(vertices, k):
                chosen = set(combo)
                if all(set(e.vertices) & chosen for e in edges):
                    opt = k
                    break
            if opt is not None:
                break
        assert vc.cover_size() <= 2 * opt
        assert vc.opt_lower_bound() <= opt
