"""Concurrent stress: N reader threads against a live update stream.

The harness proves the two concurrency contracts of docs/queries.md:

* **No torn reads** — every view a reader gets re-derives its content
  fingerprint and passes the internal cross-checks
  (:meth:`EpochView.verify_consistent`), i.e. it never mixes two epochs;
  and the epochs each thread observes are monotone non-decreasing.
* **Read-your-writes** — after the writer has acknowledged batch ``B``,
  ``read_at(epoch=B)`` (from a different thread) serves a view at epoch
  >= B, immediately.

Both contracts are exercised unsharded and through the K ∈ {1, 2}
sharded router (inline transport), and once over HTTP via QueryClient.
"""

from __future__ import annotations

import threading

import pytest

from repro.core.dynamic_matching import DynamicMatching
from repro.query import (
    EpochNotReady,
    QueryClient,
    QueryService,
    certify_view,
    oracle_view,
    sharded_oracle_view,
    start_query_server,
)
from repro.workloads.runner import run_stream

from tests.query.conftest import churn_stream

pytestmark = pytest.mark.query

N_READERS = 4


class ReaderPool:
    """N threads hammering a QueryService until told to stop; each
    records every violation rather than raising (threads must not die
    silently mid-assert)."""

    def __init__(self, service: QueryService, n: int = N_READERS) -> None:
        self.service = service
        self.stop = threading.Event()
        self.violations = []
        self.reads = 0
        self._lock = threading.Lock()
        self.threads = [
            threading.Thread(target=self._loop, args=(i,), daemon=True)
            for i in range(n)
        ]

    def _loop(self, tid: int) -> None:
        last_epoch = -1
        reads = 0
        while not self.stop.is_set():
            try:
                view = self.service.view()
                view.verify_consistent()  # torn-read check
                if view.epoch < last_epoch:
                    self.violations.append(
                        f"reader {tid}: epoch went backwards "
                        f"{last_epoch} -> {view.epoch}"
                    )
                last_epoch = view.epoch
                # Point reads answer from one consistent view.
                v = (tid * 7 + reads) % 30
                m = self.service.match_of(v)
                if m is not None and not self.service.is_matched_edge(m):
                    # Both reads hit the *newest* view; a mismatch is only
                    # legal if an epoch was published in between.
                    if self.service.epoch == view.epoch:
                        self.violations.append(
                            f"reader {tid}: cover edge {m} not matched "
                            f"within epoch {view.epoch}"
                        )
                reads += 1
            except AssertionError as exc:
                self.violations.append(f"reader {tid}: {exc}")
                break
        with self._lock:
            self.reads += reads

    def __enter__(self) -> "ReaderPool":
        for t in self.threads:
            t.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop.set()
        for t in self.threads:
            t.join(timeout=10)
        assert not self.violations, self.violations


def test_concurrent_readers_unsharded_no_torn_reads():
    stream = churn_stream(batches=14, batch_size=8, seed=3)
    dm = DynamicMatching(rank=2, seed=42)
    service = QueryService(dm)
    with ReaderPool(service) as pool:
        run_stream(dm, stream, query=service, observer=False)
    assert pool.reads > 0
    assert service.epoch == len(stream)
    certify_view(service.view(), oracle_view(stream, len(stream), seed=42))


def test_read_your_writes_after_each_acked_batch():
    """After batch B is acked, a reader thread sees epoch >= B at once."""
    stream = churn_stream(batches=10, batch_size=6, seed=5)
    dm = DynamicMatching(rank=2, seed=42)
    service = QueryService(dm)
    results = []

    def probe(upto: int) -> None:
        try:
            view = service.read_at(upto)  # no wait: must already be there
            view.verify_consistent()
            results.append(view.epoch >= upto)
        except EpochNotReady:
            results.append(False)

    for i, batch in enumerate(stream):
        run_stream(dm, [batch], query=service, observer=False)
        t = threading.Thread(target=probe, args=(i + 1,))
        t.start()
        t.join(timeout=10)
    assert results == [True] * len(stream)
    # ...and an epoch nobody acked is rejected with the newest attached.
    with pytest.raises(EpochNotReady) as exc:
        service.read_at(len(stream) + 1)
    assert exc.value.newest == len(stream)


def test_read_at_wait_unblocks_on_publish():
    dm = DynamicMatching(rank=2, seed=1)
    service = QueryService(dm)
    got = []

    def waiter() -> None:
        got.append(service.read_at(1, wait=True, timeout=30).epoch)

    t = threading.Thread(target=waiter)
    t.start()
    stream = churn_stream(batches=1, batch_size=4, seed=9)
    run_stream(dm, stream, query=service, observer=False)
    t.join(timeout=10)
    assert got == [1]

    with pytest.raises(EpochNotReady):
        service.read_at(99, wait=True, timeout=0.05)


@pytest.mark.parametrize("k", [1, 2])
def test_concurrent_readers_sharded(k):
    from repro.sharding import ShardedMatching

    stream = churn_stream(batches=10, batch_size=8, seed=11)
    router = ShardedMatching(shards=k, seed=42, transport="inline")
    try:
        service = QueryService(router)
        with ReaderPool(service) as pool:
            run_stream(router, stream, query=service, observer=False)
        assert pool.reads > 0
        view = service.view()
        assert view.epoch == len(stream)
        assert view.epoch_vector == (len(stream),) * k
        certify_view(
            view, sharded_oracle_view(stream, len(stream), shards=k, seed=42)
        )
    finally:
        router.close()


def test_concurrent_http_readers():
    """The HTTP endpoint under concurrent readers while batches apply."""
    stream = churn_stream(batches=8, batch_size=6, seed=13)
    dm = DynamicMatching(rank=2, seed=42)
    service = QueryService(dm)
    server = start_query_server(service)
    port = server.server_address[1]
    stop = threading.Event()
    errors = []

    def http_reader(tid: int) -> None:
        client = QueryClient("127.0.0.1", port)
        last = -1
        while not stop.is_set():
            try:
                info = client.epoch()
                if info["epoch"] < last:
                    errors.append(f"http reader {tid}: epoch went backwards")
                last = info["epoch"]
                client.is_matched(tid)
                client.matching_size()
            except Exception as exc:  # noqa: BLE001 — collect, don't die
                errors.append(f"http reader {tid}: {exc!r}")
                break

    threads = [threading.Thread(target=http_reader, args=(i,), daemon=True)
               for i in range(2)]
    try:
        for t in threads:
            t.start()
        run_stream(dm, stream, query=service, observer=False)
    finally:
        stop.set()
        for t in threads:
            t.join(timeout=10)
        server.shutdown()
    assert not errors, errors
    client = QueryClient("127.0.0.1", port)
    # Server is down; the in-process service still answers.
    assert service.matching_size() == service.view().matching_size
