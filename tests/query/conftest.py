"""Shared helpers for the query-tier test package."""

from __future__ import annotations

import random
from typing import List

from repro.hypergraph.edge import Edge
from repro.workloads.streams import UpdateBatch


def churn_stream(
    batches: int = 10,
    batch_size: int = 6,
    n_vertices: int = 30,
    seed: int = 7,
    delete_every: int = 3,
) -> List[UpdateBatch]:
    """A deterministic insert/delete churn stream for query-tier tests."""
    rng = random.Random(seed)
    eid = 0
    alive: List[int] = []
    stream: List[UpdateBatch] = []
    for i in range(batches):
        if i % delete_every == delete_every - 1 and alive:
            kill = rng.sample(alive, min(batch_size // 2 + 1, len(alive)))
            alive = [e for e in alive if e not in kill]
            stream.append(UpdateBatch.delete(kill))
        else:
            edges = []
            for _ in range(batch_size):
                u, v = rng.sample(range(n_vertices), 2)
                edges.append(Edge(eid, (u, v)))
                alive.append(eid)
                eid += 1
            stream.append(UpdateBatch.insert(edges))
    return stream
