"""CLI plumbing for the query tier: serve --query-port and `repro query`."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.core.dynamic_matching import DynamicMatching
from repro.hypergraph.edge import Edge
from repro.query import QueryService, start_query_server
from repro.workloads.io import write_stream

from tests.query.conftest import churn_stream

pytestmark = pytest.mark.query


@pytest.fixture
def stream_file(tmp_path):
    path = tmp_path / "stream.txt"
    write_stream(str(path), churn_stream(batches=6, batch_size=5, seed=31))
    return str(path)


def test_serve_journal_with_query_port(tmp_path, stream_file, capsys):
    root = str(tmp_path / "state")
    rc = main(["serve", "--journal", root, "--stream", stream_file,
               "--seed", "31", "--query-port", "0", "--no-fsync"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "queries: http://127.0.0.1:" in out
    assert "query tier: epoch 6" in out
    assert "cache hit ratio" in out


def test_serve_sharded_journal_with_query_port(tmp_path, stream_file, capsys):
    root = str(tmp_path / "state")
    rc = main(["serve", "--journal", root, "--stream", stream_file,
               "--seed", "31", "--shards", "2", "--shard-transport", "inline",
               "--query-port", "0", "--no-fsync"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "queries: http://127.0.0.1:" in out
    assert "query tier: epoch 6" in out


def test_recover_with_query_port_reports_replica_epoch(tmp_path, stream_file, capsys):
    root = str(tmp_path / "state")
    assert main(["serve", "--journal", root, "--stream", stream_file,
                 "--seed", "31", "--no-fsync"]) == 0
    capsys.readouterr()
    rc = main(["serve", "--recover", root, "--certify", "--query-port", "0"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "certified against uninterrupted oracle ✓" in out
    assert "query tier: epoch 6" in out


@pytest.fixture
def live_endpoint():
    dm = DynamicMatching(rank=2, seed=3)
    dm.insert_edges([Edge(0, (1, 2)), Edge(1, (3, 4)), Edge(2, (1, 3))])
    service = QueryService(dm)
    service.publish()
    server = start_query_server(service)
    yield service, server.server_address[1]
    server.shutdown()


def test_query_subcommand_point_reads(live_endpoint, capsys):
    service, port = live_endpoint
    assert main(["query", "--port", str(port), "--v", "1"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["v"] == 1
    assert payload["matched"] == service.is_matched(1)
    assert payload["match"] == service.match_of(1)

    assert main(["query", "--port", str(port), "--eid", "0"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["matched"] == service.is_matched_edge(0)


def test_query_subcommand_aggregates(live_endpoint, capsys):
    service, port = live_endpoint
    assert main(["query", "--port", str(port), "--size"]) == 0
    assert json.loads(capsys.readouterr().out)["matching_size"] == service.matching_size()

    assert main(["query", "--port", str(port), "--levels"]) == 0
    levels = json.loads(capsys.readouterr().out)["levels"]
    assert levels == {str(k): v for k, v in service.level_stats().items()}

    assert main(["query", "--port", str(port)]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["epoch"] == service.epoch
    assert payload["epoch_vector"] == [service.epoch]


def test_query_subcommand_epoch_not_ready(live_endpoint, capsys):
    service, port = live_endpoint
    rc = main(["query", "--port", str(port), "--size",
               "--at-least", str(service.epoch + 7)])
    out = capsys.readouterr().out
    assert rc == 1
    assert f"epoch {service.epoch + 7} not yet durable" in out
    assert f"newest: {service.epoch}" in out


def test_query_subcommand_read_your_writes_satisfied(live_endpoint, capsys):
    service, port = live_endpoint
    rc = main(["query", "--port", str(port), "--size",
               "--at-least", str(service.epoch), "--wait"])
    assert rc == 0
    assert json.loads(capsys.readouterr().out)["matching_size"] == service.matching_size()
