"""Hypothesis stateful test: every read bit-matches a truncated oracle.

The machine interleaves random update batches (applied through the
primary and published to the query tier) with reads.  Every read at
epoch ``E`` must bit-match a **dict-backend oracle replay truncated at
batch E** — matched ids, vertex cover, match levels, and live-edge
count, field for field (:func:`repro.query.certify_view`).  The machine
runs across both structure backends and with the vectorized fast path
on and off; the oracle is always the dict backend, so this doubles as a
differential test of the backends through the query tier.
"""

from __future__ import annotations

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
    run_state_machine_as_test,
)

from repro.core.dynamic_matching import DynamicMatching
from repro.hypergraph.edge import Edge
from repro.query import EpochNotReady, QueryService, certify_view, oracle_view
from repro.workloads.streams import UpdateBatch

SEED = 1234


class QueryEpochMachine(RuleBasedStateMachine):
    """Interleave batches and certified reads on one configured primary."""

    backend = "array"
    vectorized: object = None

    def __init__(self) -> None:
        super().__init__()
        self.algo = DynamicMatching(
            rank=2, seed=SEED, backend=self.backend, vectorized=self.vectorized
        )
        self.service = QueryService(self.algo)
        self.stream = []
        self.alive = []
        self.next_eid = 0

    # -- updates ------------------------------------------------------- #
    @initialize()
    def epoch_zero_reads(self) -> None:
        view = self.service.view()
        assert view.epoch == 0
        assert view.matching_size == 0
        with pytest.raises(EpochNotReady):
            self.service.read_at(1)

    @rule(raw=st.lists(
        st.lists(st.integers(0, 11), min_size=2, max_size=2, unique=True),
        min_size=1, max_size=5,
    ))
    def insert_batch(self, raw) -> None:
        edges = []
        for u, v in raw:
            edges.append(Edge(self.next_eid, (u, v)))
            self.alive.append(self.next_eid)
            self.next_eid += 1
        batch = UpdateBatch.insert(edges)
        self.algo.insert_edges(list(batch.edges))
        self.stream.append(batch)
        self.service.publish()

    @rule(picks=st.lists(st.integers(0, 10_000), min_size=1, max_size=4))
    def delete_batch(self, picks) -> None:
        if not self.alive:
            return
        eids = sorted({self.alive[p % len(self.alive)] for p in picks})
        self.alive = [e for e in self.alive if e not in eids]
        batch = UpdateBatch.delete(eids)
        self.algo.delete_edges(list(batch.eids))
        self.stream.append(batch)
        self.service.publish()

    # -- reads --------------------------------------------------------- #
    @rule(back=st.integers(0, 3))
    def read_your_writes(self, back) -> None:
        """read_at(E) for any acked E must serve a view at epoch >= E."""
        want = max(0, self.service.epoch - back)
        view = self.service.read_at(want)
        assert view.epoch >= want
        view.verify_consistent()

    @rule()
    def read_future_epoch_rejected(self) -> None:
        newest = self.service.epoch
        with pytest.raises(EpochNotReady) as exc:
            self.service.read_at(newest + 1)
        assert exc.value.newest == newest
        assert exc.value.requested == newest + 1

    @rule(v=st.integers(0, 11))
    def point_reads_match_view(self, v) -> None:
        view = self.service.view()
        assert self.service.is_matched(v) == view.is_matched(v)
        assert self.service.match_of(v) == view.match_of(v)

    @invariant()
    def current_read_matches_truncated_oracle(self) -> None:
        view = self.service.view()
        assert view.epoch == len(self.stream)
        view.verify_consistent()
        oracle = oracle_view(self.stream, view.epoch, rank=2, seed=SEED)
        certify_view(view, oracle)
        # Aggregates served through the cache match the oracle too.
        assert self.service.matching_size() == oracle.matching_size
        assert self.service.level_stats() == oracle.level_stats()


CONFIGS = [
    pytest.param("array", None, id="array-vectorized"),
    pytest.param("array", False, id="array-object"),
    pytest.param("dict", None, id="dict"),
]


@pytest.mark.parametrize("backend,vectorized", CONFIGS)
def test_epoch_reads_bitmatch_truncated_oracle(backend, vectorized):
    machine_cls = type(
        f"QueryEpochMachine_{backend}_{vectorized}",
        (QueryEpochMachine,),
        {"backend": backend, "vectorized": vectorized},
    )
    run_state_machine_as_test(
        machine_cls,
        settings=settings(
            max_examples=12, stateful_step_count=12, deadline=None
        ),
    )


def test_cache_is_invalidated_on_publish():
    """A cached aggregate from epoch E must not leak into epoch E+1."""
    dm = DynamicMatching(rank=2, seed=SEED)
    svc = QueryService(dm, cache_size=8)
    dm.insert_edges([Edge(0, (0, 1))])
    svc.publish()
    assert svc.matching_size() == 1
    assert svc.matching_size() == 1  # served from cache
    assert svc.stats["cache_hits"] == 1
    dm.delete_edges([0])
    svc.publish()
    assert svc.matching_size() == 0  # fresh epoch, fresh answer
    assert svc.stats["cache_invalidations"] >= 1


def test_lru_cache_evicts_and_counts():
    from repro.query import LRUCache

    cache = LRUCache(maxsize=2)
    cache.put((1, "a", None), 1)
    cache.put((1, "b", None), 2)
    assert cache.get((1, "a", None)) == 1  # refresh a
    cache.put((1, "c", None), 3)  # evicts b
    assert cache.get((1, "b", None)) is None
    assert cache.evictions == 1
    assert cache.hits == 1 and cache.misses == 1
    with pytest.raises(ValueError):
        LRUCache(maxsize=0)
