"""Recovery replicas serving reads, and the stale-epoch refusal contract.

Regression tests for sharded ``--recover`` autodetect when the router
journal directory exists but its journal is missing, empty, or
header-only.  The contract: a replica that cannot prove an epoch must
**refuse** to serve it — recovery either fails cleanly (unreadable
journal ⇒ no service at all) or recovers to the provable epoch and
rejects every ``read_at`` beyond it with ``EpochNotReady``; it never
presents stale state as fresh to the query tier.
"""

from __future__ import annotations

import os

import pytest

from repro.cli import main
from repro.durability.journal import JOURNAL_FILE, JournalError
from repro.query import (
    EpochNotReady,
    certify_replica,
    certify_view,
    replica_service,
    sharded_oracle_view,
)
from repro.sharding import ShardedMatching
from repro.sharding.router import ROUTER_DIR
from repro.workloads.runner import run_stream

from tests.query.conftest import churn_stream

pytestmark = pytest.mark.query

SEED = 21


def _make_sharded_root(root: str, stream) -> None:
    router = ShardedMatching(
        shards=2, seed=SEED, transport="inline", durability_root=root,
        fsync=False,
    )
    try:
        run_stream(router, stream, observer=False)
    finally:
        router.close()


def _router_journal(root: str) -> str:
    return os.path.join(root, ROUTER_DIR, JOURNAL_FILE)


def test_replica_serves_certified_reads(tmp_path):
    stream = churn_stream(batches=8, batch_size=6, seed=2)
    root = str(tmp_path / "state")
    _make_sharded_root(root, stream)

    service, result = replica_service(root, do_certify=True)
    try:
        assert service.epoch == len(stream)
        view = service.view()
        view.verify_consistent()
        certify_view(
            view, sharded_oracle_view(stream, len(stream), shards=2, seed=SEED)
        )
        # certify_replica: the replica equals its own recovered primary.
        report = certify_replica(service, result.router)
        assert report["replica_epoch"] == len(stream)
        # Beyond the durable epoch: refused, never served stale-as-fresh.
        with pytest.raises(EpochNotReady) as exc:
            service.read_at(len(stream) + 1)
        assert exc.value.newest == len(stream)
    finally:
        result.router.close()


def test_empty_router_journal_refuses_to_serve(tmp_path):
    """Journal file exists but is empty (0 bytes): recovery must fail —
    there is no provable epoch, so no replica may serve reads."""
    stream = churn_stream(batches=6, batch_size=6, seed=4)
    root = str(tmp_path / "state")
    _make_sharded_root(root, stream)

    with open(_router_journal(root), "w", encoding="utf-8"):
        pass  # truncate to zero bytes
    with pytest.raises(JournalError):
        replica_service(root)


def test_missing_router_journal_refuses_to_serve(tmp_path):
    """Router directory exists but holds no journal file at all."""
    stream = churn_stream(batches=4, batch_size=6, seed=6)
    root = str(tmp_path / "state")
    _make_sharded_root(root, stream)

    os.unlink(_router_journal(root))
    assert os.path.isdir(os.path.join(root, ROUTER_DIR))
    with pytest.raises((JournalError, FileNotFoundError)):
        replica_service(root)


def test_header_only_router_journal_recovers_to_epoch_zero(tmp_path):
    """Header-only router journal: the provable epoch is 0.  Shards that
    ran ahead are rebuilt to empty, and every read-your-writes probe for
    epoch >= 1 is rejected."""
    stream = churn_stream(batches=6, batch_size=6, seed=8)
    root = str(tmp_path / "state")
    _make_sharded_root(root, stream)

    path = _router_journal(root)
    with open(path, "r", encoding="utf-8") as fh:
        header = fh.readline()
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(header)

    service, result = replica_service(root, do_certify=True)
    try:
        assert result.applied == 0
        assert service.epoch == 0
        view = service.view()
        view.verify_consistent()
        assert view.matching_size == 0
        assert view.live_edges == 0
        # The shards had applied batches; the rebuild must have reset them.
        assert all(info["rebuilt"] for info in result.per_shard)
        for epoch in (1, len(stream)):
            with pytest.raises(EpochNotReady) as exc:
                service.read_at(epoch)
            assert exc.value.newest == 0
    finally:
        result.router.close()


def test_cli_recover_empty_sharded_journal_fails_cleanly(tmp_path, capsys):
    """`serve --recover` on an unreadable sharded root: clean one-line
    refusal and exit code 1, not a traceback."""
    stream = churn_stream(batches=4, batch_size=6, seed=10)
    root = str(tmp_path / "state")
    _make_sharded_root(root, stream)
    with open(_router_journal(root), "w", encoding="utf-8"):
        pass

    rc = main(["serve", "--recover", root])
    out = capsys.readouterr().out
    assert rc == 1
    assert "cannot recover sharded root" in out
    assert "refusing to serve reads from an unproven epoch" in out


def test_cli_recover_unsharded_bad_journal_fails_cleanly(tmp_path, capsys):
    """Same refusal contract on a plain (unsharded) durability root."""
    root = tmp_path / "state"
    root.mkdir()
    (root / JOURNAL_FILE).write_text("")  # journal exists, no header

    rc = main(["serve", "--recover", str(root)])
    out = capsys.readouterr().out
    assert rc == 1
    assert "cannot recover" in out
    assert "refusing to serve reads from an unproven epoch" in out


def test_replica_missing_root_raises():
    with pytest.raises(FileNotFoundError):
        replica_service("/nonexistent/durability/root")
