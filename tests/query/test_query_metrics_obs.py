"""`repro_query_*` metrics: catalog, values, and exposition round-trip.

Extends the PR 3 hypothesis round-trip (the ``\\r``-in-label-value parser
bug class) to the query-tier metric families: whatever bytes end up in a
``kind`` label must survive render → parse bit-exactly, alongside the
epoch gauge and the epoch-lag histogram.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dynamic_matching import DynamicMatching
from repro.obs import MetricsRegistry, Observer, parse_prometheus_text, render_prometheus
from repro.query import EpochNotReady, QueryService
from repro.workloads.runner import run_stream

from tests.query.conftest import churn_stream

pytestmark = pytest.mark.query

hostile_label_values = st.text(
    alphabet=st.characters(
        codec="utf-8", exclude_categories=("Cs",), max_codepoint=0x2FF
    ),
    max_size=12,
)


@given(
    kinds=st.dictionaries(hostile_label_values, st.integers(0, 50), max_size=5),
    epoch=st.integers(0, 10_000),
    lags=st.lists(st.integers(0, 200), max_size=20),
)
@settings(max_examples=60)
def test_query_families_round_trip_hostile_labels(kinds, epoch, lags):
    """Control chars (\\r, \\n), quotes and backslashes in a query `kind`
    label survive the exposition round-trip on the query families."""
    from repro.query.service import EPOCH_LAG_BUCKETS

    reg = MetricsRegistry()
    fam = reg.counter("repro_query_requests_total", "reads", ("kind",))
    for kind, n in kinds.items():
        fam.labels(kind=kind).inc(n)
    reg.gauge("repro_query_epoch", "epoch").set(epoch)
    lag = reg.histogram("repro_query_epoch_lag", buckets=EPOCH_LAG_BUCKETS).labels()
    for v in lags:
        lag.observe(float(v))

    parsed = parse_prometheus_text(render_prometheus(reg))

    for kind, n in kinds.items():
        key = ("repro_query_requests_total", frozenset([("kind", kind)]))
        assert parsed[key] == pytest.approx(n)
    assert parsed[("repro_query_epoch", frozenset())] == pytest.approx(epoch)
    assert parsed[("repro_query_epoch_lag_count", frozenset())] == len(lags)
    inf_key = ("repro_query_epoch_lag_bucket", frozenset([("le", "+Inf")]))
    assert parsed[inf_key] == len(lags)


def test_service_populates_query_metrics():
    """End-to-end: a served run + reads populate every family with the
    values the service's own stats report, and they round-trip."""
    obs = Observer()
    stream = churn_stream(batches=6, batch_size=5, seed=17)
    dm = DynamicMatching(rank=2, seed=9)
    service = QueryService(dm, observer=obs)
    run_stream(dm, stream, query=service, observer=obs)

    service.matching_size()
    service.matching_size()  # cache hit
    service.is_matched(0)
    service.match_of(0, at_least=2)  # lag = epoch - 2
    with pytest.raises(EpochNotReady):
        service.read_at(len(stream) + 5)

    reg = obs.registry
    assert reg.get("repro_query_requests_total").value(kind="matching_size") == 2
    assert reg.get("repro_query_requests_total").value(kind="is_matched") == 1
    assert reg.get("repro_query_requests_total").value(kind="match_of") == 1
    assert reg.get("repro_query_cache_hits_total").value() == service.stats["cache_hits"]
    assert reg.get("repro_query_cache_misses_total").value() == service.stats["cache_misses"]
    assert reg.get("repro_query_epoch").value() == len(stream)
    assert reg.get("repro_query_publishes_total").value() == len(stream) + 1  # + epoch 0
    assert reg.get("repro_query_rejected_total").value() == 1
    assert reg.get("repro_query_matching_size").value() == service.view().matching_size

    (_, lag_child), = reg.get("repro_query_epoch_lag").samples()
    assert lag_child.count >= 1  # the at_least read observed its lag

    parsed = parse_prometheus_text(render_prometheus(reg))
    key = ("repro_query_requests_total", frozenset([("kind", "matching_size")]))
    assert parsed[key] == 2
    assert parsed[("repro_query_epoch", frozenset())] == len(stream)


def test_attach_observer_is_idempotent_per_registry():
    """Two services on one registry co-register the same catalog."""
    obs = Observer()
    dm1 = DynamicMatching(rank=2, seed=1)
    dm2 = DynamicMatching(rank=2, seed=2)
    s1 = QueryService(dm1, observer=obs)
    s2 = QueryService(dm2, observer=obs)
    s1.matching_size()
    s2.matching_size()
    assert obs.registry.get("repro_query_requests_total").value(kind="matching_size") == 2
