"""Tests for scaling-law fits."""

import numpy as np
import pytest

from repro.analysis.fit import (
    best_polylog_exponent,
    constant_fit,
    polylog_fit,
    power_law_fit,
)


class TestPowerLaw:
    def test_exact_linear(self):
        f = power_law_fit([1, 2, 4, 8], [3, 6, 12, 24])
        assert f.exponent == pytest.approx(1.0)
        assert f.coeff == pytest.approx(3.0)
        assert f.r2 == pytest.approx(1.0)

    def test_cubic(self):
        xs = np.array([2.0, 4, 8, 16])
        f = power_law_fit(xs, 5 * xs**3)
        assert f.exponent == pytest.approx(3.0)

    def test_noisy_recovers_exponent(self):
        rng = np.random.default_rng(0)
        xs = np.logspace(1, 4, 20)
        ys = 2 * xs**1.5 * np.exp(rng.normal(0, 0.05, 20))
        f = power_law_fit(xs, ys)
        assert 1.4 < f.exponent < 1.6

    def test_validation(self):
        with pytest.raises(ValueError):
            power_law_fit([1], [1])
        with pytest.raises(ValueError):
            power_law_fit([1, -2], [1, 1])
        with pytest.raises(ValueError):
            power_law_fit([1, 2], [1, 1, 1])

    def test_describe(self):
        assert "R²" in power_law_fit([1, 2], [1, 2]).describe()


class TestPolylog:
    def test_recovers_cube(self):
        xs = np.array([2.0**k for k in range(3, 12)])
        ys = 7 * np.log2(xs) ** 3
        fits = polylog_fit(xs, ys)
        assert fits[3].r2 == pytest.approx(1.0)
        assert fits[3].coeff == pytest.approx(7.0)
        assert fits[2].r2 < fits[3].r2
        assert fits[4].r2 < fits[3].r2

    def test_constant_series(self):
        xs = [4, 8, 16, 32]
        fits = polylog_fit(xs, [5, 5, 5, 5])
        assert fits[0].r2 == pytest.approx(1.0, abs=1e-9)

    def test_best_exponent_free_fit(self):
        xs = np.array([2.0**k for k in range(3, 12)])
        ys = 2 * np.log2(xs) ** 2
        f = best_polylog_exponent(xs, ys)
        assert f.exponent == pytest.approx(2.0, abs=0.01)

    def test_xs_must_exceed_one(self):
        with pytest.raises(ValueError):
            polylog_fit([1, 2], [1, 1])


class TestConstantFit:
    def test_flat_series(self):
        c = constant_fit([10, 100, 1000], [5.0, 5.0, 5.0])
        assert c.mean == 5.0
        assert c.cv == 0.0
        assert c.max_over_min == 1.0
        assert abs(c.growth_slope) < 1e-9

    def test_growing_series_flagged(self):
        c = constant_fit([10, 100, 1000], [5, 50, 500])
        assert c.growth_slope == pytest.approx(1.0)

    def test_describe(self):
        assert "slope" in constant_fit([2, 4], [1.0, 1.1]).describe()
