"""Tests for work-profile rollups."""

import numpy as np

from repro.analysis.profiles import untagged_work, work_profile
from repro.core.dynamic_matching import DynamicMatching
from repro.parallel.ledger import Ledger
from repro.workloads.generators import erdos_renyi_edges


class TestWorkProfile:
    def test_empty_ledger(self):
        assert work_profile(Ledger()) == []

    def test_fractions_sum_to_one(self):
        led = Ledger()
        led.charge(work=10, tag="add_match")
        led.charge(work=30, tag="dict_batch")
        rows = work_profile(led)
        assert sum(frac for _, _, frac in rows) == 1.0

    def test_sorted_descending(self):
        led = Ledger()
        led.charge(work=5, tag="add_match")
        led.charge(work=50, tag="dict_batch")
        rows = work_profile(led)
        assert rows[0][0] == "hash tables"

    def test_unknown_tags_grouped_as_other(self):
        led = Ledger()
        led.charge(work=7, tag="mystery_phase")
        rows = work_profile(led)
        assert rows == [("other", 7.0, 1.0)]

    def test_real_run_covers_all_phases(self):
        dm = DynamicMatching(seed=0)
        edges = erdos_renyi_edges(20, 100, np.random.default_rng(1))
        dm.insert_edges(edges)
        dm.delete_edges([e.eid for e in edges])
        rows = dict((p, w) for p, w, _ in work_profile(dm.ledger))
        assert "greedy match" in rows and "hash tables" in rows
        assert rows.get("other", 0.0) == 0.0, "unmapped tags appeared"


class TestUntaggedWork:
    def test_zero_when_all_tagged(self):
        led = Ledger()
        led.charge(work=10, tag="x")
        assert untagged_work(led) == 0.0

    def test_counts_untagged(self):
        led = Ledger()
        led.charge(work=10)
        led.charge(work=5, tag="x")
        assert untagged_work(led) == 10.0

    def test_library_charges_are_always_tagged(self):
        """Accounting canary: the whole dynamic pipeline tags every charge."""
        dm = DynamicMatching(seed=3)
        edges = erdos_renyi_edges(15, 60, np.random.default_rng(2))
        dm.insert_edges(edges)
        dm.delete_edges([e.eid for e in edges])
        assert untagged_work(dm.ledger) == 0.0
