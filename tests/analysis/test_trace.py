"""Tests for run traces and sparklines."""

import math

import numpy as np
import pytest

from repro.analysis.trace import GAP_CHAR, RunTrace, TracePoint, sparkline, trace_stream
from repro.core.dynamic_matching import DynamicMatching
from repro.workloads.generators import erdos_renyi_edges
from repro.workloads.streams import insert_then_delete_stream


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_constant_series_flat(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_monotone_rises(self):
        s = sparkline([0, 1, 2, 3])
        assert s[0] == "▁" and s[-1] == "█"
        assert list(s) == sorted(s)

    def test_length_matches_input(self):
        assert len(sparkline(list(range(10)))) == 10

    def test_downsampling(self):
        assert len(sparkline(list(range(100)), width=20)) == 20

    def test_width_larger_than_series(self):
        assert len(sparkline([1, 2], width=50)) == 2

    def test_nan_renders_as_gap(self):
        # regression: used to raise ValueError normalizing over NaN
        assert sparkline([1.0, math.nan, 3.0]) == "▁" + GAP_CHAR + "█"

    def test_all_nan_series(self):
        assert sparkline([math.nan] * 4) == GAP_CHAR * 4

    def test_nan_ignored_when_downsampling(self):
        vals = [1.0, math.nan] * 10  # every bucket mixes a NaN in
        s = sparkline(vals, width=5)
        assert len(s) == 5 and GAP_CHAR not in s  # averages skip the NaNs

    def test_all_nan_bucket_is_gap(self):
        vals = [1.0, 2.0, math.nan, math.nan, 3.0, 4.0]
        s = sparkline(vals, width=3)
        assert s[1] == GAP_CHAR

    def test_nan_constant_finite_mix(self):
        s = sparkline([5.0, math.nan, 5.0])
        assert s == "▁" + GAP_CHAR + "▁"


class TestTracePoint:
    def test_work_per_update_nan_on_empty_batch(self):
        pt = TracePoint(
            batch_index=0, kind="insert", size=0, work=0.0, depth=0.0,
            matching_size=0, live_edges=0,
        )
        assert math.isnan(pt.work_per_update)

    def test_empty_batch_series_renders(self):
        trace = RunTrace()
        for i, size in enumerate((4, 0, 4)):
            trace.points.append(
                TracePoint(
                    batch_index=i, kind="insert", size=size, work=float(size),
                    depth=1.0, matching_size=1, live_edges=1,
                )
            )
        s = sparkline(trace.series("work_per_update"))
        assert s[1] == GAP_CHAR  # the empty batch is a gap, not a crash


class TestRunTrace:
    @pytest.fixture
    def traced(self, rng):
        edges = erdos_renyi_edges(15, 60, rng)
        stream = insert_then_delete_stream(edges, 15)
        dm = DynamicMatching(seed=0)
        return trace_stream(dm, stream), stream

    def test_one_point_per_batch(self, traced):
        trace, stream = traced
        assert len(trace.points) == len(stream)

    def test_kinds_recorded(self, traced):
        trace, stream = traced
        assert [p.kind for p in trace.points] == [b.kind for b in stream]

    def test_series_extraction(self, traced):
        trace, _ = traced
        work = trace.series("work")
        assert len(work) == len(trace.points)
        assert all(w >= 0 for w in work)

    def test_unknown_metric(self, traced):
        trace, _ = traced
        with pytest.raises(KeyError):
            trace.series("nonsense")

    def test_live_edges_ends_at_zero(self, traced):
        trace, _ = traced
        assert trace.points[-1].live_edges == 0

    def test_totals(self, traced):
        trace, stream = traced
        t = trace.totals()
        assert t["batches"] == len(stream)
        assert t["updates"] == sum(b.size for b in stream)
        assert t["work"] > 0

    def test_dashboard_renders(self, traced):
        trace, _ = traced
        dash = trace.dashboard(width=30)
        assert "work/batch" in dash and "matching" in dash

    def test_empty_dashboard(self):
        assert "empty" in RunTrace().dashboard()
