"""Tests for experiment table formatting."""

import pytest

from repro.analysis.reporting import format_table, print_experiment


class TestFormatTable:
    def test_alignment(self):
        out = format_table(["m", "work"], [[100, 1.5], [10000, 22.125]])
        lines = out.splitlines()
        assert len(lines) == 4
        widths = {len(l) for l in lines}
        assert len(widths) == 1  # all lines equal width

    def test_header_rule(self):
        out = format_table(["a"], [[1]])
        assert set(out.splitlines()[1]) == {"-"}

    def test_float_formatting(self):
        out = format_table(["x"], [[0.000123], [123456.0], [1.5]])
        assert "0.000123" in out and "1.23e+05" in out and "1.5" in out

    def test_zero(self):
        assert "0" in format_table(["x"], [[0.0]])

    def test_row_length_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_strings_pass_through(self):
        out = format_table(["algo"], [["dynamic"]])
        assert "dynamic" in out


def test_print_experiment(capsys):
    print_experiment("E0 smoke", ["x"], [[1]], notes="a note")
    out = capsys.readouterr().out
    assert "=== E0 smoke ===" in out and "a note" in out
