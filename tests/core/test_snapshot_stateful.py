"""Hypothesis stateful test: snapshot restore is a true state copy.

A :class:`DynamicMatching` is driven through random insert/delete rules.
At any point a ``checkpoint`` rule may snapshot it and restore the
snapshot into BOTH backends (dict and array).  From then on every rule is
applied to the original *and* every restored copy, and the invariant
asserts they stay bit-identical — same matching, same live edges, same
per-step ledger charges, same RNG stream.  That is the exactness the
durability layer's certified recovery rests on: a version-2 snapshot is
not "a structure with the same content" but "the same structure".
"""

from __future__ import annotations

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.core.dynamic_matching import DynamicMatching
from repro.core.snapshot import load_state, save_state
from repro.hypergraph.edge import Edge


class SnapshotCopyMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.dm = DynamicMatching(rank=3, seed=777, backend="array")
        self.copies = []  # (label, instance) restored from snapshots
        self.next_eid = 0
        self.live = []

    def _everyone(self):
        return [("original", self.dm)] + self.copies

    @rule(data=st.data(), count=st.integers(1, 4))
    def insert(self, data, count):
        edges = []
        for _ in range(count):
            vs = data.draw(
                st.lists(st.integers(0, 19), min_size=3, max_size=3, unique=True),
                label="vertices",
            )
            edges.append(Edge(self.next_eid, vs))
            self.live.append(self.next_eid)
            self.next_eid += 1
        for _, dm in self._everyone():
            dm.insert_edges([Edge(e.eid, list(e.vertices)) for e in edges])

    @rule(data=st.data())
    def delete(self, data):
        if not self.live:
            return
        k = data.draw(st.integers(1, min(3, len(self.live))), label="delete count")
        idx = data.draw(
            st.lists(st.integers(0, len(self.live) - 1), min_size=k, max_size=k,
                     unique=True),
            label="victims",
        )
        eids = [self.live[i] for i in idx]
        for i in sorted(idx, reverse=True):
            self.live.pop(i)
        for _, dm in self._everyone():
            dm.delete_edges(list(eids))

    @rule()
    def checkpoint(self):
        # Snapshot the original and restore into both backends; the copies
        # must then track the original forever.  Cap the herd at 4 so step
        # cost stays bounded.
        if len(self.copies) >= 4:
            return
        state = save_state(self.dm)
        self.copies.append(("restored-array", load_state(state, backend="array")))
        self.copies.append(("restored-dict", load_state(state, backend="dict")))

    @invariant()
    def copies_track_original(self):
        want_matched = self.dm.matched_ids()
        want_edges = {e.eid for e in self.dm.structure.all_edges()}
        want_rng = self.dm.rng.bit_generator.state
        for label, dm in self.copies:
            assert dm.matched_ids() == want_matched, label
            assert {e.eid for e in dm.structure.all_edges()} == want_edges, label
            assert dm.rng.bit_generator.state == want_rng, (
                f"{label}: RNG stream diverged"
            )
            dm.check_invariants()


# A restored copy replays the identical charge sequence, so ledger deltas
# must agree exactly once a copy exists; verified via a scripted run
# (stateful invariants above cover structure; this covers costs).
def test_restored_copy_charges_identically():
    rng = np.random.default_rng(5)
    dm = DynamicMatching(rank=3, seed=5, backend="array")
    eid = 0
    for _ in range(10):
        edges = [
            Edge(eid + j, rng.choice(25, size=3, replace=False).tolist())
            for j in range(3)
        ]
        eid += 3
        dm.insert_edges(edges)
    copies = {
        "array": load_state(save_state(dm), backend="array"),
        "dict": load_state(save_state(dm), backend="dict"),
    }
    for step in range(8):
        victims = dm.matched_ids()[:2]
        fresh = [Edge(eid + j, rng.choice(25, size=3, replace=False).tolist())
                 for j in range(2)]
        eid += 2
        charges = {}
        for label, inst in [("original", dm)] + list(copies.items()):
            w0, d0 = inst.ledger.work, inst.ledger.depth
            if victims:
                inst.delete_edges(list(victims))
            inst.insert_edges([Edge(e.eid, list(e.vertices)) for e in fresh])
            charges[label] = (inst.ledger.work - w0, inst.ledger.depth - d0)
        assert charges["array"] == charges["original"], f"step {step}"
        assert charges["dict"] == charges["original"], f"step {step}"


TestSnapshotCopyStateful = SnapshotCopyMachine.TestCase
TestSnapshotCopyStateful.settings = settings(
    max_examples=25, stateful_step_count=20, deadline=None
)
