"""Vectorized dynamic fast path vs the object pipeline and dict oracle.

The acceptance bar for the struct-of-arrays pipeline (docs/hotpath.md) is
*bit-identity*, not mere equivalence: for a fixed seed, the vectorized
array backend (with the native kernel backend off AND with it on), the
object (per-edge) array backend, and the record-dict oracle must agree
after every batch on

* the matching (ids, in order),
* every match's sample space (contents and order),
* the live epoch state (level, sample size), and
* the ledger — global work, composed depth, and per-tag totals.

The native legs run whatever ``REPRO_NATIVE`` selects (CI runs the
differential once under ``numba`` and once under ``numpy``; without the
env var they exercise the counted numpy tier) against the ``off`` leg's
inline fallbacks, once with the columnar structure-edit kernels forced
off (``REPRO_EDIT_KERNELS=off``) and once with them on — the five-way
seam of docs/hotpath.md.

On top of the trace differential this file checks the fallback seam (an
attached charge observer routes batches to the object pipeline without
changing one bit), the engine-backed settle rounds (pool and shm
transports), the ``vec_stats``-to-metrics export, and certified crash
recovery of a journal written by a vectorized instance.
"""

from __future__ import annotations

import os
from typing import List

import numpy as np
import pytest

from repro import native
from repro.core.certify import certify
from repro.core.dynamic_matching import DynamicMatching
from repro.hypergraph.edge import Edge

N_TRACES = 50

#: Backend mode for the native differential leg: the CI native job sets
#: REPRO_NATIVE to numba / numpy explicitly; default exercises the
#: counted numpy tier ("auto" also resolves to it when numba is absent).
NATIVE_MODE = os.environ.get("REPRO_NATIVE", "auto").strip().lower() or "auto"
if NATIVE_MODE == "off":  # an off native leg would duplicate the vec leg
    NATIVE_MODE = "auto"


@pytest.fixture(autouse=True)
def _vectorize_every_batch(monkeypatch):
    """Drop the size cutoff so even tiny trace batches take the vector
    path (the differential is pointless if everything falls back), and
    restore whatever native backend was configured before the test."""
    monkeypatch.setenv("REPRO_VEC_MIN", "1")
    prev = native.MODE
    yield
    native.configure(prev)


def _apply_with_native(
    dm: DynamicMatching, op, mode: str, edits: str = "off"
) -> None:
    """Apply one batch with the native backend pinned to ``mode`` and
    the batched edit kernels pinned to ``edits`` (the interleaved legs
    of the differential each run under their own)."""
    native.configure(mode)
    prev = os.environ.get("REPRO_EDIT_KERNELS")
    os.environ["REPRO_EDIT_KERNELS"] = edits
    try:
        _apply(dm, op)
    finally:
        if prev is None:
            os.environ.pop("REPRO_EDIT_KERNELS", None)
        else:
            os.environ["REPRO_EDIT_KERNELS"] = prev


def _script(seed: int):
    """One random batch script: [("insert", edges) | ("delete", eids)]."""
    rng = np.random.default_rng(seed)
    max_vertices = int(rng.integers(6, 14))
    rank = int(rng.integers(2, 4))
    steps = int(rng.integers(4, 10))
    script = []
    live: List[int] = []
    next_eid = 0
    for _ in range(steps):
        if not live or rng.random() < 0.6:
            k = int(rng.integers(1, 7))
            batch = []
            for _ in range(k):
                card = int(rng.integers(1, rank + 1))
                vs = rng.choice(max_vertices, size=card, replace=False)
                batch.append(Edge(next_eid, [int(v) for v in vs]))
                live.append(next_eid)
                next_eid += 1
            script.append(("insert", batch))
        else:
            k = int(rng.integers(1, min(len(live), 6) + 1))
            idx = sorted(rng.choice(len(live), size=k, replace=False), reverse=True)
            eids = [live[i] for i in idx]
            for i in idx:
                live.pop(i)
            script.append(("delete", eids))
    return rank, script


def _apply(dm: DynamicMatching, op) -> None:
    kind, payload = op
    if kind == "insert":
        dm.insert_edges(list(payload))
    else:
        dm.delete_edges(list(payload))


def _fingerprint(dm: DynamicMatching):
    """Everything the bit-identity contract covers, after one batch.

    ``samples_of`` charges the ledger, so the ledger snapshot is taken
    first; the charge itself is part of the contract (both sides pay it
    identically), which keeps later cumulative snapshots comparable.
    """
    led = (dm.ledger.work, dm.ledger.depth, dict(dm.ledger.by_tag))
    matched = dm.matched_ids()
    samples = {
        mid: [e.eid for e in dm.structure.samples_of(mid)] for mid in matched
    }
    epochs = sorted(
        (ep.eid, ep.level, ep.sample_size) for ep in dm.tracker.live_epochs()
    )
    return led, matched, samples, epochs


class TestFiveWayDifferential:
    @pytest.mark.parametrize("chunk", range(5))
    def test_traces(self, chunk):
        """N_TRACES seeded traces: vectorized array (native off), the
        native-backend leg with edit kernels off, the native-backend
        leg with edit kernels on (both NATIVE_MODE), object array, and
        the dict oracle, bit-identical at every batch boundary."""
        per = N_TRACES // 5
        for seed in range(chunk * per, (chunk + 1) * per):
            rank, script = _script(seed)
            dm_vec = DynamicMatching(
                rank=rank, seed=seed + 1, backend="array", vectorized=True
            )
            dm_nat = DynamicMatching(
                rank=rank, seed=seed + 1, backend="array", vectorized=True
            )
            dm_edt = DynamicMatching(
                rank=rank, seed=seed + 1, backend="array", vectorized=True
            )
            dm_obj = DynamicMatching(
                rank=rank, seed=seed + 1, backend="array", vectorized=False
            )
            dm_dict = DynamicMatching(rank=rank, seed=seed + 1, backend="dict")
            for step, op in enumerate(script):
                _apply_with_native(dm_vec, op, "off")
                _apply_with_native(dm_nat, op, NATIVE_MODE, edits="off")
                _apply_with_native(dm_edt, op, NATIVE_MODE, edits="auto")
                _apply(dm_obj, op)
                _apply(dm_dict, op)
                fp_vec = _fingerprint(dm_vec)
                assert fp_vec == _fingerprint(dm_nat), (
                    f"seed {seed} step {step}: native backend "
                    f"({NATIVE_MODE}) != inline vectorized"
                )
                assert fp_vec == _fingerprint(dm_edt), (
                    f"seed {seed} step {step}: edit kernels "
                    f"({NATIVE_MODE}) != inline vectorized"
                )
                assert fp_vec == _fingerprint(dm_obj), (
                    f"seed {seed} step {step}: vectorized != object pipeline"
                )
                assert fp_vec == _fingerprint(dm_dict), (
                    f"seed {seed} step {step}: vectorized != dict oracle"
                )
                dm_vec.check_invariants()
                dm_edt.check_invariants()
            assert dm_vec.vec_stats["vector_batches"] == len(script)
            assert dm_vec.vec_stats["kernel_fallbacks"] == 0
            assert dm_nat.vec_stats["vector_batches"] == len(script)
            assert dm_edt.vec_stats["vector_batches"] == len(script)
            cert_v, cert_n, cert_e, cert_o = (
                certify(dm_vec), certify(dm_nat), certify(dm_edt),
                certify(dm_obj),
            )
            assert (
                cert_v.matched == cert_n.matched == cert_e.matched
                == cert_o.matched
            )
            assert (
                cert_v.witness == cert_n.witness == cert_e.witness
                == cert_o.witness
            )
            assert dm_obj.vec_stats["vector_batches"] == 0
            assert dm_obj.vec_stats["object_batches"] == len(script)
        # the edit-kernel leg must actually have exercised the columnar
        # twins (global dispatch stats are cumulative across the chunk)
        st = native.stats()
        assert st.get("edit_add_level0", {}).get("calls", 0) > 0
        assert st.get("intern_localize", {}).get("calls", 0) > 0


class TestObserverFallback:
    def test_bridge_falls_back_bit_identically(self):
        """A charge observer (Observer(bridge=True)) must route every
        batch to the object pipeline with zero behavioral difference."""
        from repro.obs.observer import Observer

        for seed in (3, 11, 27):
            rank, script = _script(seed)
            dm_plain = DynamicMatching(rank=rank, seed=seed + 1, vectorized=False)
            dm_obs = DynamicMatching(rank=rank, seed=seed + 1, vectorized=True)
            obs = Observer(bridge=True)
            detach = obs.attach_matching(dm_obs)
            try:
                for op in script:
                    _apply(dm_plain, op)
                    _apply(dm_obs, op)
                    assert _fingerprint(dm_plain) == _fingerprint(dm_obs)
            finally:
                detach()
            stats = dm_obs.vec_stats
            assert stats["vector_batches"] == 0
            assert stats["object_batches"] == len(script)
            assert stats["kernel_fallbacks"] == len(script)

    def test_default_observer_keeps_vector_path(self):
        """Without the opt-in bridge, observation is per-batch sampling
        and the vector path stays engaged."""
        from repro.obs.observer import Observer

        rank, script = _script(7)
        dm = DynamicMatching(rank=rank, seed=8, vectorized=True)
        obs = Observer()  # bridge=False: no ledger observer installed
        detach = obs.attach_matching(dm)
        try:
            for op in script:
                _apply(dm, op)
        finally:
            detach()
        assert dm.vec_stats["vector_batches"] == len(script)
        assert dm.vec_stats["kernel_fallbacks"] == 0


class TestMetricsExport:
    def test_vec_stats_reach_registry(self):
        """run_stream publishes vec_stats; the repro_dynamic_batch_*
        counters and the fraction gauge must track them exactly."""
        from repro.obs.observer import Observer
        from repro.workloads.runner import run_stream
        from repro.workloads.streams import UpdateBatch

        rank, script = _script(19)
        stream = [
            UpdateBatch.insert(payload) if kind == "insert"
            else UpdateBatch.delete(payload)
            for kind, payload in script
        ]
        dm = DynamicMatching(rank=rank, seed=20, vectorized=True)
        obs = Observer()
        run_stream(dm, stream, observer=obs)
        stats = dm.vec_stats
        assert obs.dynamic_vector_batches.value() == stats["vector_batches"]
        assert obs.dynamic_object_batches.value() == stats["object_batches"]
        assert obs.dynamic_frames.value() == stats["frames"]
        assert obs.dynamic_kernel_fallbacks.value() == stats["kernel_fallbacks"]
        total = stats["vector_batches"] + stats["object_batches"]
        assert total == len(stream)
        assert obs.dynamic_vectorized_fraction.value() == (
            stats["vector_batches"] / total
        )


class TestCrashRecoveryReplay:
    def test_certified_recovery_of_vectorized_run(self, tmp_path):
        """A journal written by a vectorized instance recovers and
        certifies against the from-scratch oracle replay."""
        from repro.durability import DurabilityManager, recover
        from repro.testing.faults import random_batches

        rng = np.random.default_rng(31)
        batches = random_batches(rng, 16)
        dm = DynamicMatching(rank=3, seed=31, vectorized=True)
        with DurabilityManager.create(
            str(tmp_path), dm, checkpoint_every=4
        ) as mgr:
            for batch in batches:
                mgr.log_batch(batch)
                if batch.kind == "insert":
                    dm.insert_edges(list(batch.edges))
                else:
                    dm.delete_edges(list(batch.eids))
                mgr.note_applied(dm)
        assert dm.vec_stats["vector_batches"] > 0
        res = recover(str(tmp_path))
        assert res.certified
        assert res.dm.matched_ids() == dm.matched_ids()
        assert (res.dm.ledger.work, res.dm.ledger.depth) == (
            dm.ledger.work, dm.ledger.depth
        )


@pytest.mark.parallel
class TestEngineSettleRounds:
    """Engine-backed settle rounds under the vectorized pipeline: pool
    and shm transports, forced-parallel scheduler, bit-identity vs the
    serial vectorized run and the object pipeline."""

    @pytest.fixture(scope="class", params=["pool", "shm"])
    def engine(self, request):
        from repro.parallel.engine import Engine, EngineConfig, SchedulerConfig

        eng = Engine(
            EngineConfig(
                mode=request.param,
                workers=2,
                min_session_edges=0,
                scheduler=SchedulerConfig(
                    cutoff_work=0.0, min_items_per_task=1,
                    task_overhead_work=0.0, margin=10.0, assume_cores=8,
                ),
            )
        )
        yield eng
        eng.close()

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_engine_bit_identical(self, engine, seed):
        from repro.workloads.adversary import RandomOrderAdversary
        from repro.workloads.generators import erdos_renyi_edges
        from repro.workloads.streams import insert_then_delete_stream

        def make_stream():
            edges = erdos_renyi_edges(40, 300, np.random.default_rng(seed))
            return insert_then_delete_stream(
                edges, 64, RandomOrderAdversary(np.random.default_rng(seed + 50))
            )

        dm_serial = DynamicMatching(rank=2, seed=seed + 100, vectorized=True)
        dm_engine = DynamicMatching(
            rank=2, seed=seed + 100, vectorized=True, engine=engine
        )
        dm_object = DynamicMatching(rank=2, seed=seed + 100, vectorized=False)
        for b1, b2, b3 in zip(make_stream(), make_stream(), make_stream()):
            for dm, batch in ((dm_serial, b1), (dm_engine, b2), (dm_object, b3)):
                if batch.kind == "insert":
                    dm.insert_edges(list(batch.edges))
                else:
                    dm.delete_edges(list(batch.eids))
            fp = _fingerprint(dm_serial)
            assert fp == _fingerprint(dm_engine), f"seed {seed}: engine diverged"
            assert fp == _fingerprint(dm_object), f"seed {seed}: object diverged"
        assert dm_engine.vec_stats["vector_batches"] > 0
        cert_s, cert_e = certify(dm_serial), certify(dm_engine)
        assert cert_s.matched == cert_e.matched
        assert cert_s.witness == cert_e.witness
