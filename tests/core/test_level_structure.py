"""Unit tests for the leveled matching structure layer."""

import pytest

from repro.hypergraph.edge import Edge
from repro.parallel.ledger import Ledger
from repro.core.level_structure import (
    EdgeType,
    LeveledStructure,
    level_of,
)


@pytest.fixture
def structure(ledger):
    return LeveledStructure(rank=3, ledger=ledger)


class TestLevelOf:
    def test_alpha_two(self):
        assert level_of(1, 2) == 0
        assert level_of(2, 2) == 1
        assert level_of(3, 2) == 1
        assert level_of(4, 2) == 2
        assert level_of(1023, 2) == 9
        assert level_of(1024, 2) == 10

    def test_alpha_three(self):
        assert level_of(1, 3) == 0
        assert level_of(2, 3) == 0
        assert level_of(3, 3) == 1
        assert level_of(9, 3) == 2
        assert level_of(26, 3) == 2

    def test_invalid(self):
        with pytest.raises(ValueError):
            level_of(0, 2)
        with pytest.raises(ValueError):
            level_of(5, 1)


class TestRegistry:
    def test_register_and_rec(self, structure):
        e = Edge(0, (1, 2))
        rec = structure.register(e)
        assert rec.type == EdgeType.UNSETTLED
        assert structure.rec(0) is rec

    def test_register_duplicate_rejected(self, structure):
        structure.register(Edge(0, (1, 2)))
        with pytest.raises(KeyError):
            structure.register(Edge(0, (3, 4)))

    def test_register_rank_violation_rejected(self, structure):
        with pytest.raises(ValueError):
            structure.register(Edge(0, (1, 2, 3, 4)))  # rank bound is 3

    def test_unregister(self, structure):
        structure.register(Edge(0, (1, 2)))
        structure.unregister(0)
        assert 0 not in structure.recs

    def test_constructor_validation(self, ledger):
        with pytest.raises(ValueError):
            LeveledStructure(rank=0, ledger=ledger)


class TestAddMatch:
    def test_singleton_match_level0(self, structure):
        e = Edge(0, (1, 2))
        structure.register(e)
        rec = structure.add_match(e, [e])
        assert rec.type == EdgeType.MATCHED
        assert rec.level == 0
        assert rec.owner == 0
        assert structure.cover_of(1) == 0 and structure.cover_of(2) == 0

    def test_match_with_samples(self, structure):
        m = Edge(0, (1, 2))
        s1, s2, s3 = Edge(1, (2, 3)), Edge(2, (1, 4)), Edge(3, (2, 5))
        for e in (m, s1, s2, s3):
            structure.register(e)
        rec = structure.add_match(m, [m, s1, s2, s3])
        assert rec.level == 2  # floor(lg 4)
        assert rec.settle_size == 4
        assert structure.rec(1).type == EdgeType.SAMPLED
        assert structure.rec(1).owner == 0

    def test_match_must_contain_self(self, structure):
        m, s = Edge(0, (1, 2)), Edge(1, (2, 3))
        structure.register(m)
        structure.register(s)
        with pytest.raises(ValueError):
            structure.add_match(m, [s])

    def test_double_match_rejected(self, structure):
        e = Edge(0, (1, 2))
        structure.register(e)
        structure.add_match(e, [e])
        with pytest.raises(ValueError):
            structure.add_match(e, [e])


class TestCrossEdges:
    def _matched_pair(self, structure):
        m = Edge(0, (1, 2))
        structure.register(m)
        structure.add_match(m, [m])
        return m

    def test_add_cross_edge_owner_and_index(self, structure):
        self._matched_pair(structure)
        c = Edge(5, (2, 7))
        structure.register(c)
        structure.add_cross_edge(c)
        rec = structure.rec(5)
        assert rec.type == EdgeType.CROSS and rec.owner == 0
        assert 5 in structure.rec(0).cross
        # P(v, 0) holds the edge under BOTH endpoints
        assert 5 in structure.verts[2].P[0]
        assert 5 in structure.verts[7].P[0]

    def test_add_cross_edge_requires_incident_match(self, structure):
        c = Edge(5, (8, 9))
        structure.register(c)
        with pytest.raises(ValueError):
            structure.add_cross_edge(c)

    def test_cross_owner_prefers_higher_level(self, structure):
        # level-0 match on (1,2); level-1 match (sample size 2) on (3,4)
        m0 = Edge(0, (1, 2))
        structure.register(m0)
        structure.add_match(m0, [m0])
        m1, s = Edge(1, (3, 4)), Edge(2, (4, 5))
        structure.register(m1)
        structure.register(s)
        structure.add_match(m1, [m1, s])
        c = Edge(9, (2, 3))  # incident on both matches
        structure.register(c)
        structure.add_cross_edge(c)
        assert structure.rec(9).owner == 1  # the level-1 match

    def test_remove_cross_edge(self, structure):
        self._matched_pair(structure)
        c = Edge(5, (2, 7))
        structure.register(c)
        structure.add_cross_edge(c)
        structure.remove_cross_edge(c)
        rec = structure.rec(5)
        assert rec.type == EdgeType.UNSETTLED and rec.owner is None
        assert 5 not in structure.rec(0).cross
        assert 0 not in structure.verts[2].P  # bucket cleaned up

    def test_remove_non_cross_rejected(self, structure):
        m = self._matched_pair(structure)
        with pytest.raises(ValueError):
            structure.remove_cross_edge(m)


class TestRemoveMatch:
    def test_returns_owned_cross_edges(self, structure):
        m = Edge(0, (1, 2))
        structure.register(m)
        structure.add_match(m, [m])
        c1, c2 = Edge(1, (2, 7)), Edge(2, (1, 8))
        for c in (c1, c2):
            structure.register(c)
            structure.add_cross_edge(c)
        out = structure.remove_match(0)
        assert {e.eid for e in out} == {1, 2}
        assert structure.cover_of(1) is None
        assert structure.rec(1).type == EdgeType.UNSETTLED
        assert 0 not in structure.matched

    def test_remove_unmatched_rejected(self, structure):
        e = Edge(0, (1, 2))
        structure.register(e)
        with pytest.raises(ValueError):
            structure.remove_match(0)

    def test_preserves_newer_vertex_claims(self, structure):
        """remove_match must not clear p(v) that a newer match took over."""
        m_old = Edge(0, (1, 2))
        structure.register(m_old)
        structure.add_match(m_old, [m_old])
        m_new = Edge(1, (2, 3))
        structure.register(m_new)
        # simulate a settle stealing vertex 2
        structure.verts[2].p = 1
        structure.matched.add(1)
        structure.rec(1).type = EdgeType.MATCHED
        from repro.parallel.dictionary import BatchSet

        structure.rec(1).samples = BatchSet(structure.ledger, [1])
        structure.rec(1).cross = BatchSet(structure.ledger)
        structure.rec(1).owner = 1
        structure.rec(1).level = 0
        structure.rec(1).settle_size = 1
        structure.remove_match(0)
        assert structure.cover_of(2) == 1  # untouched
        assert structure.cover_of(1) is None


class TestIsHeavy:
    def test_threshold(self, ledger):
        s = LeveledStructure(rank=2, ledger=ledger, heavy_factor=4.0)
        m = Edge(0, (1, 2))
        s.register(m)
        rec = s.add_match(m, [m])  # level 0 -> threshold 4*4*1 = 16
        for i in range(1, 16):
            c = Edge(i, (2, 100 + i))
            s.register(c)
            s.add_cross_edge(c)
        assert not s.is_heavy(rec)  # 15 < 16
        c = Edge(16, (2, 200))
        s.register(c)
        s.add_cross_edge(c)
        assert s.is_heavy(rec)  # 16 >= 16

    def test_heavy_factor_zero_always_heavy(self, ledger):
        s = LeveledStructure(rank=2, ledger=ledger, heavy_factor=0.0)
        m = Edge(0, (1, 2))
        s.register(m)
        rec = s.add_match(m, [m])
        assert s.is_heavy(rec)

    def test_non_match_rejected(self, structure):
        e = Edge(0, (1, 2))
        structure.register(e)
        with pytest.raises(ValueError):
            structure.is_heavy(structure.rec(0))


class TestCrossEdgesBelow:
    def test_collects_strictly_lower_levels(self, structure):
        m0 = Edge(0, (1, 2))
        structure.register(m0)
        structure.add_match(m0, [m0])  # level 0
        c = Edge(1, (2, 9))
        structure.register(c)
        structure.add_cross_edge(c)  # sits in P(2, 0) and P(9, 0)
        assert structure.cross_edges_below(2, 0) == []
        assert structure.cross_edges_below(2, 1) == [1]
        assert structure.cross_edges_below(99, 5) == []


class TestInvariantChecker:
    def test_accepts_valid_structure(self, structure):
        m = Edge(0, (1, 2))
        structure.register(m)
        structure.add_match(m, [m])
        c = Edge(1, (2, 3))
        structure.register(c)
        structure.add_cross_edge(c)
        structure.check_invariants()

    def test_detects_unsettled_edge(self, structure):
        structure.register(Edge(0, (1, 2)))
        with pytest.raises(AssertionError):
            structure.check_invariants()

    def test_detects_bad_owner_level(self, structure):
        m = Edge(0, (1, 2))
        structure.register(m)
        structure.add_match(m, [m])
        c = Edge(1, (2, 3))
        structure.register(c)
        structure.add_cross_edge(c)
        structure.rec(0).level = 3  # corrupt: stored level diverges
        with pytest.raises(AssertionError):
            structure.check_invariants()

    def test_detects_stale_p_entry(self, structure):
        m = Edge(0, (1, 2))
        structure.register(m)
        structure.add_match(m, [m])
        c = Edge(1, (2, 3))
        structure.register(c)
        structure.add_cross_edge(c)
        structure.verts[3].P[0].insert_one(777)  # dangling id
        with pytest.raises(AssertionError):
            structure.check_invariants()
