"""Tests for matching certificates."""

import numpy as np
import pytest

from repro.core.certify import MatchingCertificate, certify
from repro.core.dynamic_matching import DynamicMatching
from repro.hypergraph.edge import Edge
from repro.workloads.generators import erdos_renyi_edges, random_hypergraph_edges


def _built(seed=0, rank=2, m=60):
    rng = np.random.default_rng(seed)
    if rank == 2:
        edges = erdos_renyi_edges(15, m, rng)
    else:
        edges = random_hypergraph_edges(15, m, rank, rng, uniform=False)
    dm = DynamicMatching(rank=rank, seed=seed + 1)
    dm.insert_edges(edges)
    return dm, edges


class TestCertify:
    def test_certificate_verifies(self):
        dm, edges = _built()
        certify(dm).verify(edges)

    def test_after_deletions(self):
        dm, edges = _built()
        ids = [e.eid for e in edges]
        dm.delete_edges(ids[:25])
        remaining = [e for e in edges if e.eid not in set(ids[:25])]
        certify(dm).verify(remaining)

    @pytest.mark.parametrize("rank", [3, 4])
    def test_hypergraphs(self, rank):
        dm, edges = _built(seed=rank, rank=rank)
        certify(dm).verify(edges)

    def test_empty_structure(self):
        dm = DynamicMatching(seed=0)
        certify(dm).verify([])

    def test_verification_is_independent(self):
        """A certificate round-trips through plain data (no live refs)."""
        dm, edges = _built(seed=9)
        cert = certify(dm)
        clone = MatchingCertificate(
            matched=tuple(cert.matched), witness=dict(cert.witness)
        )
        clone.verify(edges)


class TestVerifierCatchesDefects:
    def test_conflicting_matching_rejected(self):
        edges = [Edge(0, (1, 2)), Edge(1, (2, 3))]
        cert = MatchingCertificate(matched=(0, 1), witness={})
        with pytest.raises(AssertionError):
            cert.verify(edges)

    def test_missing_witness_rejected(self):
        edges = [Edge(0, (1, 2)), Edge(1, (2, 3))]
        cert = MatchingCertificate(matched=(0,), witness={})
        with pytest.raises(AssertionError):
            cert.verify(edges)

    def test_non_incident_witness_rejected(self):
        edges = [Edge(0, (1, 2)), Edge(1, (5, 6)), Edge(2, (2, 3))]
        cert = MatchingCertificate(matched=(0, 1), witness={2: 1})  # 1 not incident on 2
        with pytest.raises(AssertionError):
            cert.verify(edges)

    def test_unmatched_witness_rejected(self):
        edges = [Edge(0, (1, 2)), Edge(1, (2, 3)), Edge(2, (3, 4))]
        cert = MatchingCertificate(matched=(0,), witness={1: 0, 2: 1})
        with pytest.raises(AssertionError):
            cert.verify(edges)

    def test_unknown_matched_id_rejected(self):
        cert = MatchingCertificate(matched=(7,), witness={})
        with pytest.raises(AssertionError):
            cert.verify([Edge(0, (1, 2))])

    def test_stray_witness_rejected(self):
        edges = [Edge(0, (1, 2))]
        cert = MatchingCertificate(matched=(0,), witness={99: 0})
        with pytest.raises(AssertionError):
            cert.verify(edges)

    def test_non_maximal_not_certifiable(self):
        """A free edge cannot be given a valid witness."""
        edges = [Edge(0, (1, 2)), Edge(1, (5, 6))]
        cert = MatchingCertificate(matched=(0,), witness={1: 0})
        with pytest.raises(AssertionError):
            cert.verify(edges)
