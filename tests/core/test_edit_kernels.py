"""Columnar structure-edit kernels vs the dict-backed reference.

The batched edit kernels (``edit_add_level0`` / ``edit_cross_scan`` /
``edit_cross_sim`` / ``edit_remove_match`` / ``intern_localize``) are
the compiled twins of ``ArrayLeveledStructure``'s scalar edit loops.
Their contract is the same bit-identity bar as the rest of the fast
path: with the kernels on (``REPRO_EDIT_KERNELS=auto``) and off
(``off``), a fixed-seed run must agree after every batch on the
matching, every sample space, the live epochs, and the ledger's
work/depth/per-tag totals — including streams whose edge and vertex
ids straddle the int32 boundary (the frame columns widen; the dense
interned ids the kernels consume stay narrow).

Three layers:

* **trace parity** (hypothesis) — random update scripts through two
  ``DynamicMatching`` instances, kernels on vs off, full-state
  fingerprints per batch plus ``check_invariants`` (which asserts the
  columnar mirrors against the dicts);
* **kernel-level parity** (hypothesis) — ``edit_cross_sim``'s
  jump-based capacity simulation vs a naive sequential re-derivation
  of the scalar loop, and ``intern_localize`` vs ``np.unique``;
* **numba twins** (skipped without numba) — the compiled kernels in
  ``repro.native._numba`` vs the numpy bodies on identical inputs,
  outputs AND mutated argument arrays compared.
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import native
from repro.core.dynamic_matching import DynamicMatching
from repro.hypergraph.edge import Edge
from repro.native import kernels as npk

try:
    from repro.native._numba import NUMBA_KERNELS

    HAVE_NUMBA = True
except ImportError:
    NUMBA_KERNELS = {}
    HAVE_NUMBA = False

#: Edge/vertex id offset that puts ids astride the int32 boundary.
BIG = 2**31 - 2


@pytest.fixture(autouse=True)
def _vectorize_and_restore(monkeypatch):
    monkeypatch.setenv("REPRO_VEC_MIN", "1")
    prev = native.MODE
    yield
    native.configure(prev)


def _run_script(rank, script, seed, edits: str):
    """One DynamicMatching pass with the edit kernels pinned on/off,
    fingerprinting after every batch."""
    prev = os.environ.get("REPRO_EDIT_KERNELS")
    os.environ["REPRO_EDIT_KERNELS"] = edits
    try:
        native.configure("auto")
        dm = DynamicMatching(
            rank=rank, seed=seed, backend="array", vectorized=True
        )
        fps = []
        for kind, payload in script:
            if kind == "insert":
                dm.insert_edges(list(payload))
            else:
                dm.delete_edges(list(payload))
            led = (dm.ledger.work, dm.ledger.depth, dict(dm.ledger.by_tag))
            matched = dm.matched_ids()
            samples = {
                mid: [e.eid for e in dm.structure.samples_of(mid)]
                for mid in matched
            }
            epochs = sorted(
                (ep.eid, ep.level, ep.sample_size)
                for ep in dm.tracker.live_epochs()
            )
            fps.append((led, matched, samples, epochs))
            dm.check_invariants()
        return fps, dm
    finally:
        if prev is None:
            os.environ.pop("REPRO_EDIT_KERNELS", None)
        else:
            os.environ["REPRO_EDIT_KERNELS"] = prev


@st.composite
def _scripts(draw):
    """A random batch script plus its rank, over a small vertex pool
    (small pools force settles, steals and cross-edge churn)."""
    rank = draw(st.integers(2, 3))
    nv = draw(st.integers(5, 12))
    big = draw(st.booleans())
    voff = BIG if big else 0
    eoff = BIG if big else 0
    steps = draw(st.integers(2, 6))
    script = []
    live = []
    next_eid = 0
    for _ in range(steps):
        if not live or draw(st.booleans()) or draw(st.booleans()):
            k = draw(st.integers(1, 5))
            batch = []
            for _ in range(k):
                card = draw(st.integers(1, rank))
                vs = draw(
                    st.lists(
                        st.integers(0, nv - 1),
                        min_size=card, max_size=card, unique=True,
                    )
                )
                batch.append(Edge(eoff + next_eid, [voff + v for v in vs]))
                live.append(eoff + next_eid)
                next_eid += 1
            script.append(("insert", batch))
        else:
            k = draw(st.integers(1, min(len(live), 4)))
            idx = draw(
                st.lists(
                    st.integers(0, len(live) - 1),
                    min_size=k, max_size=k, unique=True,
                )
            )
            eids = [live[i] for i in sorted(idx)]
            for i in sorted(idx, reverse=True):
                live.pop(i)
            script.append(("delete", eids))
    return rank, script


class TestTraceParity:
    @settings(max_examples=40, deadline=None)
    @given(data=_scripts(), seed=st.integers(0, 9))
    def test_edits_on_off_bit_identical(self, data, seed):
        rank, script = data
        fps_off, dm_off = _run_script(rank, script, seed + 1, "off")
        fps_on, dm_on = _run_script(rank, script, seed + 1, "auto")
        for step, (a, b) in enumerate(zip(fps_off, fps_on)):
            assert a == b, f"step {step}: edit kernels diverged"
        assert dm_on.vec_stats["vector_batches"] == len(script)

    def test_kernels_actually_fire(self):
        """A dense insert/delete/insert stream must route through the
        columnar edit kernels (no silent fallback-to-legacy)."""
        edges = [Edge(i, (2 * i, 2 * i + 1)) for i in range(12)]
        script = [
            ("insert", edges[:8]),
            ("delete", [e.eid for e in edges[:4]]),
            ("insert", edges[8:]),
        ]
        before = {
            k: native.stats().get(k, {}).get("calls", 0)
            for k in ("edit_add_level0", "edit_remove_match",
                      "intern_localize")
        }
        _run_script(2, script, 5, "auto")
        after = native.stats()
        for k, n0 in before.items():
            assert after[k]["calls"] > n0, f"{k} never fired"


# --------------------------------------------------------------------- #
# Kernel-level parity
# --------------------------------------------------------------------- #
def _cross_sim_ref(inv, lens, caps):
    """Naive sequential re-derivation of the scalar C(m)-insert loop
    (pre-insert probe depth, post-insert doubling with w_rehash in
    insertion order) — the semantics edit_cross_sim's jump simulation
    must reproduce exactly."""
    lens = lens.tolist()
    caps = caps.tolist()
    bd0 = np.zeros(inv.size, dtype=np.int64)
    w_rehash = 0.0
    for j, o in enumerate(inv.tolist()):
        n = lens[o]
        bd = n.bit_length() if n >= 2 else 1
        n += 1
        lens[o] = n
        cap = caps[o]
        if n > cap * 0.75:
            dg = (n - 1).bit_length() if n > 1 else 1
            while n > cap * 0.75:
                cap *= 2
                w_rehash += cap * 0.75
                bd += dg
            caps[o] = cap
        bd0[j] = bd
    return bd0, w_rehash, lens, caps


@st.composite
def _sim_inputs(draw):
    u = draw(st.integers(1, 8))
    capk = draw(st.lists(st.integers(0, 3), min_size=u, max_size=u))
    caps = np.array([8 * 2**k for k in capk], dtype=np.int64)
    lens = np.array(
        [draw(st.integers(0, int(c * 0.75))) for c in caps], dtype=np.int64
    )
    n = draw(st.integers(1, 40))
    inv = np.array(
        draw(st.lists(st.integers(0, u - 1), min_size=n, max_size=n)),
        dtype=np.int64,
    )
    return inv, lens, caps


class TestCrossSimParity:
    @settings(max_examples=120, deadline=None)
    @given(data=_sim_inputs())
    def test_jump_sim_matches_sequential(self, data):
        inv, lens, caps = data
        ref_bd, ref_wr, ref_lens, ref_caps = _cross_sim_ref(inv, lens, caps)
        lens2, caps2 = lens.copy(), caps.copy()
        bd0, wr = npk.edit_cross_sim(inv, lens2, caps2)
        assert np.array_equal(bd0, ref_bd)
        assert wr == ref_wr  # integral dyadics: order-independent, exact
        assert lens2.tolist() == ref_lens
        assert caps2.tolist() == ref_caps


class TestInternLocalize:
    @settings(max_examples=80, deadline=None)
    @given(
        dense=st.lists(st.integers(0, 30), min_size=1, max_size=60),
        epoch=st.integers(1, 5),
    )
    def test_matches_np_unique(self, dense, epoch):
        dense = np.array(dense, dtype=np.int32)
        table = int(dense.max()) + 1
        stamp = np.zeros(table, dtype=np.int64)
        label = np.zeros(table, dtype=np.int32)
        vinv, uniq = npk.intern_localize(dense, stamp, label, epoch)
        exp_uniq, exp_inv = np.unique(dense, return_inverse=True)
        assert np.array_equal(uniq, exp_uniq)
        assert np.array_equal(vinv.astype(np.int64), exp_inv.astype(np.int64))


# --------------------------------------------------------------------- #
# Numba twins (CI native job; skipped when numba is absent)
# --------------------------------------------------------------------- #
def _edit_args(name, n, rng):
    """Deterministic argument tuples for the stateful edit kernels —
    same shapes the structure hands them."""
    if name == "edit_add_level0":
        nm = max(1, n // 4)
        slots = rng.permutation(n)[:nm].astype(np.int32)
        cards = rng.integers(1, 4, size=nm)
        total = int(cards.sum())
        dflat = rng.permutation(4 * n)[:total].astype(np.int32)
        return (
            slots, cards, dflat,
            np.zeros(n, np.int32), np.full(n, -1, np.int32),
            np.zeros(n, np.int32), np.full(n, -1, np.int32),
            np.zeros(n, np.int64), np.zeros(n, np.int64),
            np.full(4 * n, -1, np.int32),
        )
    if name == "edit_cross_scan":
        nm = max(1, n // 4)
        ne = max(1, n // 4)
        nvtx = 2 * n
        cards = rng.integers(1, 4, size=ne)
        total = int(cards.sum())
        pcol = rng.integers(-1, nm, size=nvtx).astype(np.int32)
        larr = np.full(n, -1, np.int32)
        larr[:nm] = rng.integers(0, 6, size=nm)
        tarr = np.zeros(n, np.int32)
        tarr[:nm] = 1
        osl = np.full(n, -1, np.int32)
        osl[:nm] = np.arange(nm, dtype=np.int32)
        return (
            np.arange(nm, nm + ne, dtype=np.int32), cards,
            rng.integers(0, nvtx, size=total).astype(np.int32),
            pcol, larr, tarr, osl,
        )
    if name == "edit_cross_sim":
        u = max(1, n // 4)
        return (
            rng.integers(0, u, size=n),
            rng.integers(0, 7, size=u),
            np.full(u, 8, dtype=np.int64),
        )
    if name == "edit_remove_match":
        nm = max(1, n // 4)
        nc = max(1, n // 4)
        nvtx = 4 * n
        mslots = np.arange(nm, dtype=np.int32)
        mcards = rng.integers(1, 4, size=nm)
        total = int(mcards.sum())
        mdflat = rng.permutation(nvtx)[:total].astype(np.int32)
        pcol = np.full(nvtx, -1, np.int32)
        rep = np.repeat(mslots, mcards)
        steal = rng.random(total) < 0.2
        pcol[mdflat] = np.where(steal, (rep + 1) % np.int32(nm), rep)
        tarr = np.zeros(n, np.int32)
        tarr[:nm] = 1
        tarr[nm:nm + nc] = 3
        return (
            mslots, mcards, mdflat, rng.random(nm) < 0.9,
            np.arange(nm, nm + nc, dtype=np.int32),
            tarr, np.full(n, -1, np.int32), np.zeros(n, np.int32),
            np.ones(n, np.int32), rng.integers(1, 4, size=n), pcol,
        )
    assert name == "intern_localize"
    table = max(1, n // 2)
    return (
        rng.integers(0, table, size=n).astype(np.int32),
        np.zeros(table, np.int64), np.zeros(table, np.int32), 1,
    )


EDIT_KERNELS = (
    "edit_add_level0", "edit_cross_scan", "edit_cross_sim",
    "edit_remove_match", "intern_localize",
)


def _tuple_equal(a, b):
    if isinstance(a, tuple):
        return len(a) == len(b) and all(map(np.array_equal, a, b))
    return np.array_equal(a, b)


@pytest.mark.skipif(not HAVE_NUMBA, reason="numba not importable")
class TestNumbaTwins:
    @pytest.mark.parametrize("name", EDIT_KERNELS)
    @pytest.mark.parametrize("n", [1, 7, 64, 500])
    def test_twin_parity(self, name, n):
        """Compiled twin vs numpy body: outputs and post-call argument
        state bit-identical on identically-seeded inputs."""
        for seed in range(3):
            a_np = _edit_args(name, n, np.random.default_rng(seed))
            a_nb = _edit_args(name, n, np.random.default_rng(seed))
            out_np = npk.NUMPY_KERNELS[name](*a_np)
            out_nb = NUMBA_KERNELS[name](*a_nb)
            assert _tuple_equal(out_np, out_nb), f"{name} output n={n}"
            assert _tuple_equal(a_np, a_nb), f"{name} arg state n={n}"
