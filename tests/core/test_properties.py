"""Property tests locking the array-backed engine to the matching contract.

Hypothesis drives arbitrary insert/delete batch sequences; after every
batch the matching must be vertex-disjoint, maximal against an
independent plain-hypergraph mirror, and `repro.core.certify` must
produce a certificate that verifies.  Everything runs against BOTH
structure backends — the original record-dict oracle ("dict") and the
flat-array hot-path engine ("array") — and a differential property pins
the two to identical matchings *and* identical ledger totals.
"""

from __future__ import annotations

from typing import List, Tuple

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.certify import certify
from repro.core.dynamic_matching import DynamicMatching
from repro.hypergraph.edge import Edge
from repro.hypergraph.hypergraph import Hypergraph
from repro.testing import random_workout

from tests.conftest import update_scripts

BACKENDS = ("array", "dict")


def _replay(script, backend: str, seed: int = 99, rank: int = 3):
    """Apply a conftest update-script as batches; yield (dm, mirror) after
    each batch.  Consecutive inserts coalesce into one batch; each delete
    resolves its index against the currently-live edges."""
    dm = DynamicMatching(rank=rank, seed=seed, backend=backend)
    mirror = Hypergraph()
    next_eid = 0
    pending: List[Edge] = []

    def flush():
        nonlocal pending
        if pending:
            dm.insert_edges(pending)
            mirror.add_edges(pending)
            pending = []
            return True
        return False

    for op, arg in script:
        if op == "insert":
            pending.append(Edge(next_eid, arg))
            next_eid += 1
        else:
            flushed = flush()
            if flushed:
                yield dm, mirror
            live = mirror.edge_ids()
            if not live:
                continue
            eid = live[arg % len(live)]
            dm.delete_edges([eid])
            mirror.remove_edges([eid])
            yield dm, mirror
    if flush():
        yield dm, mirror


def _assert_matching_contract(dm: DynamicMatching, mirror: Hypergraph) -> None:
    matched = dm.matched_ids()
    # Vertex-disjoint.
    used = set()
    for eid in matched:
        vs = mirror.edge(eid).vertices
        assert not used.intersection(vs), "matched edges share a vertex"
        used.update(vs)
    # Maximal against the independent mirror.
    assert mirror.is_maximal_matching(matched)
    # Full Definition 4.1 invariants.
    dm.check_invariants()
    # Certificate round-trip: every witness audited edge-by-edge.
    certify(dm).verify(mirror.edges())


@pytest.mark.parametrize("backend", BACKENDS)
@settings(max_examples=60, deadline=None)
@given(script=update_scripts(max_vertices=10, max_rank=3, max_ops=40))
def test_matching_contract_after_any_batch_sequence(backend, script):
    for dm, mirror in _replay(script, backend):
        _assert_matching_contract(dm, mirror)


@settings(max_examples=60, deadline=None)
@given(script=update_scripts(max_vertices=9, max_rank=2, max_ops=36))
def test_backends_agree_exactly(script):
    """Same seed + same batches: the array engine must reproduce the dict
    oracle bit-for-bit — matching, work, depth, and per-tag totals."""
    runs = {}
    for backend in BACKENDS:
        trace: List[Tuple] = []
        dm = None
        for dm, _mirror in _replay(script, backend, seed=41):
            trace.append((tuple(dm.matched_ids()), dm.ledger.work, dm.ledger.depth))
        if dm is not None:
            trace.append(("final", dict(dm.ledger.by_tag)))
        runs[backend] = trace
    assert runs["array"] == runs["dict"]


@pytest.mark.parametrize("backend", BACKENDS)
@given(seed=st.integers(0, 10_000))
@settings(max_examples=25, deadline=None)
def test_random_workout_with_certificates(backend, seed):
    """The public fuzz harness, with per-batch certificates switched on."""
    random_workout(
        lambda: DynamicMatching(rank=2, seed=7, backend=backend),
        seed=seed,
        steps=12,
        max_vertices=8,
        certify_after_each_batch=True,
    )
