"""Determinism and cost-accounting regression tests.

Two layers of protection for the array-backed hot-path engine:

* **Run-to-run determinism** — the same seed and the same batch stream
  must produce identical per-batch ledger readings (work, depth, rounds)
  and the identical matching, twice in a row in the same process.

* **Golden ledger parity** — ``tests/core/data/ledger_parity.json`` holds
  per-batch (work, depth, rounds), final totals, per-tag work, and the
  final matched set for three canned workloads, captured from the
  original record-dict implementation *before* the array engine landed.
  Both backends must reproduce the fixture to the bit.  Any change to
  the array store or the batched charging API that alters cost
  accounting — even by one unit — fails here with a per-batch diff.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.core.dynamic_matching import BACKENDS, DynamicMatching
from repro.workloads.adversary import LifoAdversary, RandomOrderAdversary
from repro.workloads.generators import erdos_renyi_edges, random_hypergraph_edges
from repro.workloads.streams import insert_then_delete_stream, sliding_window_stream

FIXTURE = Path(__file__).parent / "data" / "ledger_parity.json"


def _build(name: str, backend: str):
    """The three fixture workloads; must match the capture script exactly."""
    if name == "er_512_b32":
        edges = erdos_renyi_edges(64, 512, np.random.default_rng(7))
        stream = insert_then_delete_stream(
            edges, 32, RandomOrderAdversary(np.random.default_rng(8))
        )
        dm = DynamicMatching(rank=2, seed=9, backend=backend)
    elif name == "hyper_256_r3_b16":
        edges = random_hypergraph_edges(48, 256, 3, np.random.default_rng(17))
        stream = insert_then_delete_stream(edges, 16, LifoAdversary())
        dm = DynamicMatching(rank=3, seed=19, backend=backend)
    elif name == "window_600_b24":
        edges = erdos_renyi_edges(80, 600, np.random.default_rng(27))
        stream = sliding_window_stream(edges, window=120, batch_size=24)
        dm = DynamicMatching(rank=2, seed=29, backend=backend)
    else:  # pragma: no cover
        raise KeyError(name)
    return dm, stream


def _replay(name: str, backend: str, check_invariants: bool = False):
    """Run one workload; return (per-batch readings, dm)."""
    dm, stream = _build(name, backend)
    batches = []
    for b in stream:
        if b.kind == "insert":
            stats = dm.insert_edges(list(b.edges))
        else:
            stats = dm.delete_edges(list(b.eids))
        batches.append((b.kind, stats.work, stats.depth, stats.num_rounds))
        if check_invariants:
            dm.check_invariants()
    return batches, dm


def _fixture():
    with open(FIXTURE) as fh:
        return json.load(fh)["workloads"]


@pytest.mark.parametrize("backend", sorted(BACKENDS))
def test_same_seed_same_stream_is_deterministic(backend):
    """Two identical runs: identical ledger readings and matching."""
    first, dm1 = _replay("er_512_b32", backend)
    second, dm2 = _replay("er_512_b32", backend)
    assert first == second
    assert dm1.ledger.work == dm2.ledger.work
    assert dm1.ledger.depth == dm2.ledger.depth
    assert dm1.ledger.by_tag == dm2.ledger.by_tag
    assert sorted(dm1.structure.matched) == sorted(dm2.structure.matched)


@pytest.mark.parametrize("backend", sorted(BACKENDS))
@pytest.mark.parametrize("name", sorted(_fixture()))
def test_ledger_parity_against_golden_fixture(backend, name):
    """Both backends reproduce the pre-refactor golden costs exactly."""
    expected = _fixture()[name]
    batches, dm = _replay(name, backend, check_invariants=True)
    got = [(k, w, d, r) for k, w, d, r in batches]
    exp = [(e["kind"], e["work"], e["depth"], e["rounds"]) for e in expected["batches"]]
    assert len(got) == len(exp)
    for i, (g, e) in enumerate(zip(got, exp)):
        assert g == e, f"{name}[{backend}] batch {i}: got {g}, fixture {e}"
    assert dm.ledger.work == expected["total_work"]
    assert dm.ledger.depth == expected["total_depth"]
    assert dm.ledger.by_tag == expected["by_tag"]
    assert sorted(dm.structure.matched) == expected["matched"]


def test_backends_registry_is_closed():
    """The fixture covers every registered backend (catch silent additions)."""
    assert set(BACKENDS) == {"array", "dict"}
