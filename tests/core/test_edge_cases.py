"""Edge cases and failure injection for the dynamic matching core.

Covers inputs at the boundary of the model (rank-1 edges, parallel
hyperedges, single-vertex overlap patterns, giant batches, pathological
streams) and verifies the invariant checker actually *catches* each class
of corruption — a checker that never fires is worthless as evidence.
"""

import numpy as np
import pytest

from repro.core.dynamic_matching import DynamicMatching
from repro.core.level_structure import EdgeType
from repro.hypergraph.edge import Edge
from repro.workloads.generators import complete_graph_edges, erdos_renyi_edges


class TestBoundaryInputs:
    def test_rank_one_edges(self):
        """Singleton hyperedges: each covers one vertex; two singletons on
        the same vertex conflict."""
        dm = DynamicMatching(rank=1, seed=0)
        dm.insert_edges([Edge(0, (5,)), Edge(1, (5,)), Edge(2, (6,))])
        dm.check_invariants()
        assert len(dm.matched_ids()) == 2  # one of {0,1}, plus 2
        dm.delete_edges([0, 1, 2])
        assert len(dm) == 0

    def test_parallel_hyperedges(self):
        """Distinct edges over the identical vertex set."""
        dm = DynamicMatching(rank=3, seed=0)
        dm.insert_edges([Edge(i, (1, 2, 3)) for i in range(6)])
        dm.check_invariants()
        assert len(dm.matched_ids()) == 1
        # delete the matched copy repeatedly; another copy must take over
        for _ in range(5):
            dm.delete_edges(dm.matched_ids())
            dm.check_invariants()
            if len(dm) == 0:
                break
            assert len(dm.matched_ids()) == 1

    def test_complete_graph_churn(self):
        dm = DynamicMatching(rank=2, seed=1)
        edges = complete_graph_edges(12)
        dm.insert_edges(edges)
        dm.check_invariants()
        rng = np.random.default_rng(2)
        ids = [e.eid for e in edges]
        rng.shuffle(ids)
        for i in range(0, len(ids), 11):
            dm.delete_edges(ids[i : i + 11])
            dm.check_invariants()

    def test_single_giant_batch(self):
        edges = erdos_renyi_edges(100, 3000, np.random.default_rng(3))
        dm = DynamicMatching(rank=2, seed=4)
        dm.insert_edges(edges)
        dm.check_invariants()
        dm.delete_edges([e.eid for e in edges])
        assert len(dm) == 0
        dm.check_invariants()

    def test_many_single_edge_batches(self):
        dm = DynamicMatching(rank=2, seed=5)
        edges = erdos_renyi_edges(20, 80, np.random.default_rng(6))
        for e in edges:
            dm.insert_edge(e)
        for e in edges:
            dm.delete_edge(e.eid)
        assert len(dm) == 0
        assert len(dm.batch_stats) == 160

    def test_reinsert_same_id_after_delete(self):
        dm = DynamicMatching(seed=0)
        dm.insert_edges([Edge(0, (1, 2))])
        dm.delete_edges([0])
        dm.insert_edges([Edge(0, (3, 4))])  # id reuse after deletion is legal
        assert dm.matched_ids() == [0]
        dm.check_invariants()

    def test_alternating_insert_delete_same_vertices(self):
        """Thrash one vertex pair through many epochs."""
        dm = DynamicMatching(seed=7)
        for i in range(30):
            dm.insert_edges([Edge(i, (1, 2))])
            dm.delete_edges([i])
        assert len(dm) == 0
        assert dm.tracker.counts()["natural"] == 30

    def test_empty_delete_batch(self):
        dm = DynamicMatching(seed=0)
        stats = dm.delete_edges([])
        assert stats.batch_size == 0
        dm.check_invariants()

    def test_interleaved_empty_batches(self):
        dm = DynamicMatching(seed=0)
        dm.insert_edges([])
        dm.insert_edges([Edge(0, (1, 2))])
        dm.delete_edges([])
        dm.delete_edges([0])
        assert len(dm) == 0


class TestFailureInjection:
    """Corrupt the structure in targeted ways; the checker must fire."""

    def _built(self):
        dm = DynamicMatching(seed=0)
        dm.insert_edges(
            [Edge(0, (1, 2)), Edge(1, (2, 3)), Edge(2, (3, 4)), Edge(3, (4, 5))]
        )
        dm.check_invariants()
        return dm

    def test_detects_vertex_pointer_corruption(self):
        dm = self._built()
        mid = dm.matched_ids()[0]
        v = dm.structure.rec(mid).edge.vertices[0]
        dm.structure.verts[v].p = None
        with pytest.raises(AssertionError):
            dm.check_invariants()

    def test_detects_type_corruption(self):
        dm = self._built()
        mid = dm.matched_ids()[0]
        dm.structure.rec(mid).type = EdgeType.CROSS
        with pytest.raises(AssertionError):
            dm.check_invariants()

    def test_detects_orphaned_owner(self):
        dm = self._built()
        for rec in dm.structure.recs.values():
            if rec.type == EdgeType.CROSS:
                rec.owner = 424242
                break
        with pytest.raises((AssertionError, KeyError)):
            dm.check_invariants()

    def test_detects_cross_set_desync(self):
        dm = self._built()
        for rec in dm.structure.recs.values():
            if rec.type == EdgeType.CROSS:
                dm.structure.rec(rec.owner).cross.delete_one(rec.eid)
                break
        with pytest.raises(AssertionError):
            dm.check_invariants()

    def test_detects_sample_set_desync(self):
        dm = self._built()
        mid = dm.matched_ids()[0]
        dm.structure.rec(mid).samples.delete_one(mid)  # match must own itself
        with pytest.raises(AssertionError):
            dm.check_invariants()

    def test_detects_level_drift(self):
        dm = self._built()
        mid = dm.matched_ids()[0]
        dm.structure.rec(mid).level += 1
        with pytest.raises(AssertionError):
            dm.check_invariants()

    def test_detects_tracker_desync(self):
        dm = self._built()
        mid = dm.matched_ids()[0]
        dm.tracker.death(mid, "natural")  # tracker thinks the epoch died
        with pytest.raises(AssertionError):
            dm.check_invariants()

    def test_detects_matching_conflict(self):
        dm = self._built()
        # force a second "match" adjacent to an existing one
        cross = next(
            r for r in dm.structure.recs.values() if r.type == EdgeType.CROSS
        )
        dm.structure.matched.add(cross.eid)
        with pytest.raises(AssertionError):
            dm.check_invariants()


class TestErrorRecovery:
    """Failed validation must not half-apply a batch."""

    def test_failed_insert_leaves_state_clean(self):
        dm = DynamicMatching(rank=2, seed=0)
        dm.insert_edges([Edge(0, (1, 2))])
        with pytest.raises(KeyError):
            dm.insert_edges([Edge(5, (7, 8)), Edge(0, (9, 10))])  # 0 duplicate
        # edge 5 must not have been half-registered
        assert 5 not in dm
        dm.check_invariants()

    def test_failed_delete_leaves_state_clean(self):
        dm = DynamicMatching(rank=2, seed=0)
        dm.insert_edges([Edge(0, (1, 2))])
        with pytest.raises(KeyError):
            dm.delete_edges([0, 99])  # 99 absent
        assert 0 in dm
        dm.check_invariants()

    def test_rank_violation_rejects_whole_batch(self):
        dm = DynamicMatching(rank=2, seed=0)
        with pytest.raises(ValueError):
            dm.insert_edges([Edge(0, (1, 2)), Edge(1, (3, 4, 5))])
        assert 0 not in dm
        dm.check_invariants()
