"""Differential testing: the dynamic algorithm vs the static baselines.

Each seeded trace replays one identical workload (same edges, same batch
boundaries) through three independent implementations:

* :class:`repro.core.DynamicMatching` on the array backend (the system
  under test),
* :class:`repro.baselines.StaticRecompute` (rerun the parallel greedy
  matcher from scratch every batch), and
* :func:`repro.static_matching.sequential_greedy_match` on the live edge
  set (the sequential oracle).

The matchings themselves may differ — each uses its own randomness — but
on every batch boundary all three must agree on the *verdicts*: each
matching is vertex-disjoint and maximal on the same live graph, and each
implementation's own invariant checker passes.  A bug in the array
engine that costs maximality (or corrupts the structure) breaks the
agreement on the first offending batch.
"""

from __future__ import annotations

from typing import List

import numpy as np
import pytest

from repro.baselines import StaticRecompute
from repro.core.dynamic_matching import DynamicMatching
from repro.hypergraph.edge import Edge
from repro.hypergraph.hypergraph import Hypergraph
from repro.static_matching.sequential_greedy import sequential_greedy_match

N_TRACES = 200


def _random_trace(seed: int):
    """A short random batch script: list of ("insert", edges) / ("delete", k)."""
    rng = np.random.default_rng(seed)
    max_vertices = int(rng.integers(6, 14))
    rank = int(rng.integers(2, 4))
    steps = int(rng.integers(4, 10))
    return rng, max_vertices, rank, steps


def _run_trace(seed: int) -> None:
    rng, max_vertices, rank, steps = _random_trace(seed)
    dm = DynamicMatching(rank=rank, seed=seed + 1, backend="array")
    sr = StaticRecompute(rank=rank, seed=seed + 2)
    mirror = Hypergraph()
    next_eid = 0

    for _ in range(steps):
        live = mirror.edge_ids()
        if not live or rng.random() < 0.6:
            k = int(rng.integers(1, 7))
            batch: List[Edge] = []
            for _ in range(k):
                card = int(rng.integers(1, rank + 1))
                vs = rng.choice(max_vertices, size=card, replace=False)
                batch.append(Edge(next_eid, [int(v) for v in vs]))
                next_eid += 1
            dm.insert_edges(batch)
            sr.insert_edges(batch)
            mirror.add_edges(batch)
        else:
            k = int(rng.integers(1, min(len(live), 6) + 1))
            idx = rng.choice(len(live), size=k, replace=False)
            eids = [live[i] for i in idx]
            dm.delete_edges(eids)
            sr.delete_edges(eids)
            mirror.remove_edges(eids)

        # Maximality agreement: every implementation's matching must be
        # maximal on the same live graph.
        verdicts = {
            "dynamic": mirror.is_maximal_matching(dm.matched_ids()),
            "static_recompute": mirror.is_maximal_matching(sr.matched_ids()),
        }
        greedy = sequential_greedy_match(
            mirror.edges(), rng=np.random.default_rng(seed + 3)
        )
        verdicts["sequential_greedy"] = mirror.is_maximal_matching(
            greedy.matched_ids
        )
        assert all(verdicts.values()), f"maximality disagreement: {verdicts}"

        # Invariant-checker verdicts must agree too (all clean).
        dm.check_invariants()
        sr.check_invariants()


@pytest.mark.parametrize("chunk", range(10))
def test_differential_traces(chunk):
    """200 seeded traces, 20 per chunk, against both static baselines."""
    for seed in range(chunk * (N_TRACES // 10), (chunk + 1) * (N_TRACES // 10)):
        _run_trace(seed)
