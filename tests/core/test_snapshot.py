"""Tests for snapshot / restore of the leveled matching structure."""

import json

import numpy as np
import pytest

from repro.core.dynamic_matching import DynamicMatching
from repro.core.snapshot import load_state, save_state
from repro.hypergraph.edge import Edge
from repro.workloads.generators import erdos_renyi_edges, star_edges


def _churned(seed=0):
    """A structure with matches above level 0, sampled and cross edges."""
    dm = DynamicMatching(rank=2, seed=seed)
    dm.insert_edges(star_edges(64))
    dm.insert_edges(erdos_renyi_edges(20, 80, np.random.default_rng(seed), start_eid=500))
    dm.delete_edges(dm.matched_ids())  # force settles
    return dm


class TestRoundTrip:
    def test_restores_same_graph_and_matching(self):
        dm = _churned()
        state = save_state(dm)
        dm2 = load_state(state, seed=99)
        assert {e.eid for e in dm2.structure.all_edges()} == {
            e.eid for e in dm.structure.all_edges()
        }
        assert dm2.matched_ids() == dm.matched_ids()
        dm2.check_invariants()

    def test_levels_and_settle_sizes_preserved(self):
        dm = _churned()
        dm2 = load_state(save_state(dm), seed=1)
        for eid in dm.matched_ids():
            a, b = dm.structure.rec(eid), dm2.structure.rec(eid)
            assert a.level == b.level
            assert a.settle_size == b.settle_size
            assert set(a.samples) == set(b.samples)
            assert set(a.cross) == set(b.cross)

    def test_json_serializable(self):
        dm = _churned()
        blob = json.dumps(save_state(dm))
        dm2 = load_state(json.loads(blob), seed=2)
        dm2.check_invariants()

    def test_restored_instance_keeps_working(self):
        dm = _churned(seed=3)
        dm2 = load_state(save_state(dm), seed=4)
        # continue updating on the restored instance
        dm2.insert_edges([Edge(9000 + i, (100 + i, 101 + i)) for i in range(10)])
        dm2.check_invariants()
        dm2.delete_edges(dm2.matched_ids())
        dm2.check_invariants()
        g = dm2.current_graph()
        assert g.is_maximal_matching(dm2.matched_ids())

    def test_empty_structure(self):
        dm = DynamicMatching(seed=0)
        dm2 = load_state(save_state(dm), seed=1)
        assert len(dm2) == 0

    def test_config_preserved(self):
        dm = DynamicMatching(rank=4, seed=0, alpha=3, heavy_factor=8.0)
        dm.insert_edges([Edge(0, (1, 2, 3))])
        dm2 = load_state(save_state(dm), seed=1)
        assert dm2.rank == 4
        assert dm2.structure.alpha == 3
        assert dm2.structure.heavy_factor == 8.0


class TestValidation:
    def test_version_mismatch(self):
        dm = DynamicMatching(seed=0)
        state = save_state(dm)
        state["version"] = 999
        with pytest.raises(ValueError):
            load_state(state)

    def test_corrupt_owner_rejected(self):
        dm = DynamicMatching(seed=0)
        dm.insert_edges([Edge(0, (1, 2)), Edge(1, (2, 3))])
        state = save_state(dm)
        for entry in state["edges"]:
            if entry["type"] == "cross":
                entry["owner"] = 12345
        with pytest.raises(ValueError):
            load_state(state)

    def test_corrupt_cross_membership_rejected(self):
        dm = DynamicMatching(seed=0)
        dm.insert_edges([Edge(0, (1, 2)), Edge(1, (2, 3))])
        state = save_state(dm)
        for entry in state["edges"]:
            if entry["type"] == "matched":
                entry["cross"] = []
        with pytest.raises(ValueError):
            load_state(state)

    def test_unsettled_type_rejected(self):
        dm = DynamicMatching(seed=0)
        dm.insert_edges([Edge(0, (1, 2)), Edge(1, (2, 3))])
        state = save_state(dm)
        for entry in state["edges"]:
            if entry["type"] == "cross":
                entry["type"] = "unsettled"
        with pytest.raises(ValueError):
            load_state(state)
