"""Property tests of §5's accounting identities on real runs.

The charging argument rests on conservation laws the tracker must obey on
every run — not just the final bounds:

* every epoch dies exactly once (natural, stolen, or bloated), and on an
  empty-to-empty run no epoch survives;
* total sample mass splits exactly: S_a = S_n + S_i (+ live);
* Lemma 5.6 per settle round: S_a >= 2 * S_d;
* Lemma 5.7's aggregate direction: natural sample mass is a constant
  fraction of induced (S_n > S_i / 3) on empty-to-empty runs.
"""

import numpy as np
import pytest

from repro.core.dynamic_matching import DynamicMatching
from repro.workloads.adversary import (
    FifoAdversary,
    RandomOrderAdversary,
    VertexTargetingAdversary,
)
from repro.workloads.generators import (
    complete_graph_edges,
    erdos_renyi_edges,
    random_hypergraph_edges,
    star_edges,
)
from repro.workloads.streams import insert_then_delete_stream


def _run(edges, batch, adversary, rank=2, seed=0):
    dm = DynamicMatching(rank=rank, seed=seed)
    stream = insert_then_delete_stream(edges, batch, adversary)
    for b in stream:
        if b.kind == "insert":
            dm.insert_edges(list(b.edges))
        else:
            dm.delete_edges(list(b.eids))
    assert len(dm) == 0
    return dm


WORKLOADS = [
    pytest.param(
        lambda: (erdos_renyi_edges(30, 200, np.random.default_rng(1)), 25,
                 RandomOrderAdversary(np.random.default_rng(2)), 2),
        id="er-random",
    ),
    pytest.param(
        lambda: (star_edges(150), 10, FifoAdversary(), 2),
        id="star-fifo",
    ),
    pytest.param(
        lambda: (complete_graph_edges(18), 20,
                 VertexTargetingAdversary(np.random.default_rng(3)), 2),
        id="complete-vertex",
    ),
    pytest.param(
        lambda: (random_hypergraph_edges(18, 250, 3, np.random.default_rng(4)), 30,
                 VertexTargetingAdversary(np.random.default_rng(5)), 3),
        id="hyper-r3",
    ),
]


@pytest.mark.parametrize("make", WORKLOADS)
class TestConservationLaws:
    def test_every_epoch_dies_exactly_once(self, make):
        edges, batch, adv, rank = make()
        dm = _run(edges, batch, adv, rank=rank)
        counts = dm.tracker.counts()
        assert counts["alive"] == 0
        assert counts["natural"] + counts["stolen"] + counts["bloated"] == len(
            dm.tracker.epochs
        )

    def test_sample_mass_splits_exactly(self, make):
        edges, batch, adv, rank = make()
        dm = _run(edges, batch, adv, rank=rank)
        t = dm.tracker
        assert t.total_added_sample() == t.total_sample("natural") + t.total_sample(
            "induced"
        )

    def test_lemma_5_6_every_round(self, make):
        edges, batch, adv, rank = make()
        dm = _run(edges, batch, adv, rank=rank)
        for st in dm.batch_stats:
            prev_bloated = 0
            for rnd in st.settle_rounds:
                s_d = rnd.stolen_sample + prev_bloated
                if s_d > 0:
                    assert rnd.added_sample >= 2 * s_d, (st.batch_index, rnd)
                prev_bloated = rnd.bloated_sample

    def test_lemma_5_7_aggregate_direction(self, make):
        edges, batch, adv, rank = make()
        dm = _run(edges, batch, adv, rank=rank)
        t = dm.tracker
        s_n = t.total_sample("natural")
        s_i = t.total_sample("induced")
        if s_i > 0:
            assert s_n > s_i / 3, (s_n, s_i)

    def test_natural_deaths_match_user_deletions_of_matches(self, make):
        edges, batch, adv, rank = make()
        dm = _run(edges, batch, adv, rank=rank)
        recorded = sum(st.natural_deaths for st in dm.batch_stats)
        assert recorded == dm.tracker.counts()["natural"]


class TestEpochLevelConsistency:
    def test_levels_match_sample_sizes_at_birth(self):
        dm = DynamicMatching(rank=2, seed=6)
        dm.insert_edges(star_edges(100))
        dm.delete_edges(dm.matched_ids())
        for ep in dm.tracker.epochs:
            assert 2**ep.level <= max(ep.sample_size, 1) < 2 ** (ep.level + 1)

    def test_batch_indices_monotone(self):
        dm = DynamicMatching(rank=2, seed=7)
        edges = erdos_renyi_edges(15, 60, np.random.default_rng(8))
        dm.insert_edges(edges)
        dm.delete_edges([e.eid for e in edges])
        for ep in dm.tracker.epochs:
            assert ep.death_batch is None or ep.death_batch >= ep.birth_batch
