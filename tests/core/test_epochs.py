"""Unit tests for the epoch tracker and batch statistics."""

import pytest

from repro.core.epochs import (
    BLOATED,
    NATURAL,
    STOLEN,
    BatchStats,
    EpochTracker,
    SettleRound,
)


class TestLifecycle:
    def test_birth_and_death(self):
        t = EpochTracker()
        ep = t.birth(5, level=1, sample_size=3)
        assert ep.alive
        t.death(5, NATURAL)
        assert not ep.alive and ep.death_kind == NATURAL

    def test_double_birth_rejected(self):
        t = EpochTracker()
        t.birth(5, 0, 1)
        with pytest.raises(ValueError):
            t.birth(5, 0, 1)

    def test_death_without_birth_rejected(self):
        with pytest.raises(ValueError):
            EpochTracker().death(5, NATURAL)

    def test_unknown_kind_rejected(self):
        t = EpochTracker()
        t.birth(5, 0, 1)
        with pytest.raises(ValueError):
            t.death(5, "mysterious")

    def test_rebirth_after_death(self):
        t = EpochTracker()
        t.birth(5, 0, 1)
        t.death(5, STOLEN)
        ep2 = t.birth(5, 2, 4)
        assert ep2.alive
        assert len(t.epochs) == 2

    def test_batch_stamping(self):
        t = EpochTracker()
        t.birth(1, 0, 1)
        t.next_batch()
        t.next_batch()
        t.death(1, NATURAL)
        ep = t.epochs[0]
        assert ep.birth_batch == 0 and ep.death_batch == 2


class TestAggregates:
    def _populated(self):
        t = EpochTracker()
        t.birth(1, 0, 4)
        t.birth(2, 0, 6)
        t.birth(3, 0, 10)
        t.birth(4, 0, 1)
        t.death(1, NATURAL)
        t.death(2, STOLEN)
        t.death(3, BLOATED)
        return t

    def test_counts(self):
        c = self._populated().counts()
        assert c == {NATURAL: 1, STOLEN: 1, BLOATED: 1, "alive": 1}

    def test_total_sample_by_kind(self):
        t = self._populated()
        assert t.total_sample(NATURAL) == 4
        assert t.total_sample("induced") == 16
        assert t.total_added_sample() == 21

    def test_live_epochs(self):
        t = self._populated()
        assert [e.eid for e in t.live_epochs()] == [4]

    def test_dead_filter(self):
        t = self._populated()
        assert len(t.dead()) == 3
        assert [e.eid for e in t.dead(STOLEN)] == [2]

    def test_induced_property(self):
        t = self._populated()
        assert not t.epochs[0].induced
        assert t.epochs[1].induced and t.epochs[2].induced


class TestBatchStats:
    def test_round_counting(self):
        st = BatchStats(kind="delete", batch_index=0, batch_size=10)
        st.settle_rounds.append(SettleRound(input_edges=5))
        st.settle_rounds.append(SettleRound(input_edges=10))
        assert st.num_rounds == 2

    def test_defaults(self):
        st = BatchStats(kind="insert", batch_index=3, batch_size=7)
        assert st.natural_deaths == 0 and st.new_epochs == 0
