"""Tests for structure diagnostics."""

import numpy as np

from repro.core.diagnostics import format_report, structure_report
from repro.core.dynamic_matching import DynamicMatching
from repro.hypergraph.edge import Edge
from repro.workloads.generators import erdos_renyi_edges, star_edges


class TestStructureReport:
    def test_empty(self):
        rep = structure_report(DynamicMatching(seed=0))
        assert rep.num_edges == 0
        assert rep.levels == []
        assert rep.max_level == -1

    def test_counts_by_type(self):
        dm = DynamicMatching(seed=0)
        dm.insert_edges([Edge(0, (1, 2)), Edge(1, (2, 3)), Edge(2, (3, 4))])
        rep = structure_report(dm)
        assert rep.num_edges == 3
        assert rep.num_matches == len(dm.matched_ids())
        assert sum(rep.type_counts.values()) == 3

    def test_fresh_inserts_on_level_zero(self):
        dm = DynamicMatching(seed=0)
        dm.insert_edges(erdos_renyi_edges(20, 60, np.random.default_rng(1)))
        rep = structure_report(dm)
        assert [l.level for l in rep.levels] == [0]
        assert rep.levels[0].mean_sample_retention == 1.0

    def test_settles_populate_higher_levels(self):
        dm = DynamicMatching(seed=1)
        dm.insert_edges(star_edges(80))
        dm.delete_edges(dm.matched_ids())
        rep = structure_report(dm)
        assert rep.max_level >= 1  # the star's settle samples are big

    def test_sample_retention_decays_lazily(self):
        dm = DynamicMatching(seed=2)
        dm.insert_edges(star_edges(64))
        dm.delete_edges(dm.matched_ids())  # settle with a big sample
        from repro.core.level_structure import EdgeType

        sampled = [
            r.eid for r in dm.structure.recs.values() if r.type == EdgeType.SAMPLED
        ]
        assert sampled
        dm.delete_edges(sampled[: max(1, len(sampled) // 2)])
        rep = structure_report(dm)
        top = max(rep.levels, key=lambda l: l.level)
        assert top.mean_sample_retention < 1.0

    def test_cross_fill_under_one_between_batches(self):
        """No match may sit at/above its heavy threshold between batches
        ... unless it was just settled and legitimately accrued cross
        edges lazily; the invariant the paper needs is only that heavy
        matches get resettled when DELETED, so fill can exceed 1."""
        dm = DynamicMatching(seed=3)
        dm.insert_edges(erdos_renyi_edges(15, 60, np.random.default_rng(2)))
        rep = structure_report(dm)
        for ls in rep.levels:
            assert ls.max_cross_fill >= 0.0

    def test_format_report(self):
        dm = DynamicMatching(seed=0)
        dm.insert_edges([Edge(0, (1, 2)), Edge(1, (2, 3))])
        text = format_report(structure_report(dm))
        assert "edges: 2" in text and "level 0" in text
