"""Property tests of the structure-edit layer in isolation.

The dynamic algorithm composes four edits (add_match, remove_match,
add_cross_edge, remove_cross_edge).  Here hypothesis drives random VALID
edit sequences directly against :class:`LeveledStructure` — bypassing the
algorithm — and checks that the data-structure layer alone preserves its
own representation invariants (C/S/P/p(v) consistency).  Invariant 4
(max-level ownership) is the *algorithm's* responsibility (via
adjustCrossEdges), so this harness restores it the same way the algorithm
does: re-adding affected cross edges after every edit that changes levels.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.level_structure import EdgeType, LeveledStructure
from repro.hypergraph.edge import Edge
from repro.parallel.ledger import Ledger

MAX_V = 8


@st.composite
def edit_scripts(draw):
    """A list of abstract edit commands over a small universe."""
    n_ops = draw(st.integers(1, 25))
    ops = []
    for _ in range(n_ops):
        ops.append(
            draw(
                st.sampled_from(
                    ["add_free_match", "add_cross", "remove_cross", "remove_match"]
                )
            )
        )
    seed = draw(st.integers(0, 10_000))
    return ops, seed


@given(edit_scripts())
@settings(max_examples=60, deadline=None)
def test_property_edit_layer_consistency(script):
    ops, seed = script
    rng = np.random.default_rng(seed)
    s = LeveledStructure(rank=2, ledger=Ledger())
    next_eid = 0
    cross_ids = []
    match_ids = []

    def fresh_edge(require_free=False, require_covered=False):
        nonlocal next_eid
        for _ in range(20):
            u, v = rng.choice(MAX_V, size=2, replace=False)
            e = Edge(next_eid, (int(u), int(v)))
            covered = any(s.verts.get(w) and s.verts[w].p is not None for w in e.vertices)
            if require_free and covered:
                continue
            if require_covered and not covered:
                continue
            next_eid += 1
            return e
        return None

    for op in ops:
        if op == "add_free_match":
            e = fresh_edge(require_free=True)
            if e is None:
                continue
            s.register(e)
            s.add_match(e, [e])
            match_ids.append(e.eid)
        elif op == "add_cross":
            if not match_ids:
                continue
            e = fresh_edge(require_covered=True)
            if e is None:
                continue
            s.register(e)
            s.add_cross_edge(e)
            cross_ids.append(e.eid)
        elif op == "remove_cross" and cross_ids:
            eid = cross_ids.pop(int(rng.integers(0, len(cross_ids))))
            if eid in s.recs and s.rec(eid).type == EdgeType.CROSS:
                s.remove_cross_edge(s.rec(eid).edge)
                s.unregister(eid)
        elif op == "remove_match" and match_ids:
            eid = match_ids.pop(int(rng.integers(0, len(match_ids))))
            if eid not in s.matched:
                continue
            freed = s.remove_match(eid)
            s.unregister(eid)
            # the algorithm would rematch/reattach freed edges; here we
            # keep the harness minimal: reattach those that still touch a
            # match, drop the rest
            for fe in freed:
                cross_ids = [c for c in cross_ids if c != fe.eid]
                if any(s.verts[v].p is not None for v in fe.vertices):
                    s.add_cross_edge(fe)
                    cross_ids.append(fe.eid)
                else:
                    s.unregister(fe.eid)

    # all level-0 structure: invariant 4 holds trivially; full check runs
    s.check_invariants()
    # spot structural facts beyond check_invariants
    for eid in cross_ids:
        if eid in s.recs:
            rec = s.rec(eid)
            assert rec.type == EdgeType.CROSS
            assert eid in s.rec(rec.owner).cross
    for eid in s.matched:
        assert s.rec(eid).level == 0  # this harness only makes singleton matches
