"""Stateful property-based fuzzing of the batch-dynamic algorithm.

Hypothesis drives arbitrary interleavings of insert/delete batches over a
small vertex universe (small universes maximize edge collisions, which is
where the matched-deletion machinery gets stressed).  After every step the
full Definition 4.1 invariant check runs and the matching is verified
maximal against an independently-maintained plain hypergraph mirror.
"""

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.core.dynamic_matching import DynamicMatching
from repro.hypergraph.edge import Edge
from repro.hypergraph.hypergraph import Hypergraph

MAX_VERTEX = 8
MAX_RANK = 3


class DynamicMatchingMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.dm = DynamicMatching(rank=MAX_RANK, seed=1234)
        self.mirror = Hypergraph()
        self.next_eid = 0

    @rule(
        vertex_sets=st.lists(
            st.lists(st.integers(0, MAX_VERTEX - 1), min_size=1, max_size=MAX_RANK, unique=True),
            min_size=0,
            max_size=8,
        )
    )
    def insert_batch(self, vertex_sets):
        edges = []
        for vs in vertex_sets:
            edges.append(Edge(self.next_eid, vs))
            self.next_eid += 1
        self.dm.insert_edges(edges)
        self.mirror.add_edges(edges)

    @rule(data=st.data())
    def delete_batch(self, data):
        live = self.mirror.edge_ids()
        if not live:
            return
        k = data.draw(st.integers(1, min(len(live), 8)))
        idx = data.draw(
            st.lists(st.integers(0, len(live) - 1), min_size=k, max_size=k, unique=True)
        )
        eids = [live[i] for i in idx]
        self.dm.delete_edges(eids)
        self.mirror.remove_edges(eids)

    @rule(data=st.data())
    def delete_matched_batch(self, data):
        """Bias the fuzzer toward the interesting case: kill matches."""
        matched = self.dm.matched_ids()
        if not matched:
            return
        k = data.draw(st.integers(1, len(matched)))
        self.dm.delete_edges(matched[:k])
        self.mirror.remove_edges(matched[:k])

    @invariant()
    def structure_invariants_hold(self):
        self.dm.check_invariants()

    @invariant()
    def matching_is_maximal_on_mirror(self):
        assert self.mirror.is_maximal_matching(self.dm.matched_ids())

    @invariant()
    def edge_sets_agree(self):
        assert {e.eid for e in self.dm.structure.all_edges()} == set(
            self.mirror.edge_ids()
        )


TestDynamicMatchingStateful = DynamicMatchingMachine.TestCase
TestDynamicMatchingStateful.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None
)
