"""Integration tests for the batch-dynamic matching algorithm (Fig. 2).

The master correctness property: after every batch operation the structure
satisfies Definition 4.1 and the matching is maximal on the current edge
set.  We verify it over hand-built scenarios, randomized scripts against a
plain-hypergraph mirror, hypergraphs of various ranks, and adversarial
streams that force the heavy / randomSettle machinery.
"""

import numpy as np
import pytest

from repro.core.dynamic_matching import DynamicMatching
from repro.core.level_structure import EdgeType
from repro.hypergraph.edge import Edge
from repro.hypergraph.hypergraph import Hypergraph
from repro.workloads.generators import (
    erdos_renyi_edges,
    random_hypergraph_edges,
    star_edges,
)


def assert_consistent(dm: DynamicMatching, mirror: Hypergraph) -> None:
    """Full consistency: invariants + maximality + mirror agreement."""
    dm.check_invariants()
    assert {e.eid for e in dm.structure.all_edges()} == {e.eid for e in mirror}
    assert mirror.is_maximal_matching(dm.matched_ids())


class TestInsertion:
    def test_insert_empty_batch(self):
        dm = DynamicMatching(seed=0)
        stats = dm.insert_edges([])
        assert stats.batch_size == 0
        dm.check_invariants()

    def test_single_edge_matched(self):
        dm = DynamicMatching(seed=0)
        dm.insert_edges([Edge(0, (1, 2))])
        assert dm.matched_ids() == [0]
        assert dm.match_of(1) == 0 and dm.match_of(2) == 0

    def test_new_matches_enter_at_level_zero(self):
        dm = DynamicMatching(seed=0)
        dm.insert_edges([Edge(i, (2 * i, 2 * i + 1)) for i in range(5)])
        for eid in dm.matched_ids():
            assert dm.structure.rec(eid).level == 0

    def test_insert_into_covered_region_adds_cross(self):
        dm = DynamicMatching(seed=0)
        dm.insert_edges([Edge(0, (1, 2))])
        dm.insert_edges([Edge(1, (2, 3))])
        assert dm.edge_type(1) == EdgeType.CROSS
        assert dm.matched_ids() == [0]

    def test_duplicate_in_batch_rejected(self):
        dm = DynamicMatching(seed=0)
        with pytest.raises(ValueError):
            dm.insert_edges([Edge(0, (1, 2)), Edge(0, (3, 4))])

    def test_existing_id_rejected(self):
        dm = DynamicMatching(seed=0)
        dm.insert_edges([Edge(0, (1, 2))])
        with pytest.raises(KeyError):
            dm.insert_edges([Edge(0, (5, 6))])

    def test_rank_bound_enforced(self):
        dm = DynamicMatching(rank=2, seed=0)
        with pytest.raises(ValueError):
            dm.insert_edges([Edge(0, (1, 2, 3))])

    def test_updates_counted(self):
        dm = DynamicMatching(seed=0)
        dm.insert_edges([Edge(0, (1, 2)), Edge(1, (3, 4))])
        assert dm.num_updates == 2


class TestDeletion:
    def test_delete_unmatched_cross(self):
        dm = DynamicMatching(seed=0)
        dm.insert_edges([Edge(0, (1, 2)), Edge(1, (2, 3))])
        dm.delete_edges([1])
        assert 1 not in dm
        assert dm.matched_ids() == [0]
        dm.check_invariants()

    def test_delete_matched_promotes_neighbor(self):
        dm = DynamicMatching(seed=0)
        dm.insert_edges([Edge(0, (1, 2)), Edge(1, (2, 3))])
        matched = dm.matched_ids()[0]
        other = 1 - matched
        dm.delete_edges([matched])
        assert dm.matched_ids() == [other]
        dm.check_invariants()

    def test_delete_everything(self):
        dm = DynamicMatching(seed=0)
        edges = [Edge(i, (i, i + 1)) for i in range(10)]
        dm.insert_edges(edges)
        dm.delete_edges([e.eid for e in edges])
        assert len(dm) == 0
        assert dm.matched_ids() == []
        dm.check_invariants()

    def test_delete_absent_rejected(self):
        dm = DynamicMatching(seed=0)
        with pytest.raises(KeyError):
            dm.delete_edges([99])

    def test_duplicate_delete_rejected(self):
        dm = DynamicMatching(seed=0)
        dm.insert_edges([Edge(0, (1, 2))])
        with pytest.raises(ValueError):
            dm.delete_edges([0, 0])

    def test_mixed_batch_matched_and_unmatched(self):
        dm = DynamicMatching(seed=0)
        dm.insert_edges([Edge(0, (1, 2)), Edge(1, (2, 3)), Edge(2, (3, 4))])
        dm.delete_edges([0, 1, 2])
        assert len(dm) == 0
        dm.check_invariants()

    def test_natural_deaths_recorded(self):
        dm = DynamicMatching(seed=0)
        dm.insert_edges([Edge(0, (1, 2))])
        dm.delete_edges([0])
        assert dm.tracker.counts()["natural"] == 1


class TestSampledEdgeDeletion:
    def _with_sampled(self, seed=0):
        """Build a structure containing SAMPLED edges by forcing a settle:
        a dense star whose center match dies while owning many cross edges."""
        dm = DynamicMatching(seed=seed, rank=2)
        edges = star_edges(40)
        dm.insert_edges(edges)
        center_match = dm.matched_ids()[0]
        dm.delete_edges([center_match])
        return dm

    def test_settle_creates_sampled_edges(self):
        dm = self._with_sampled()
        types = {dm.edge_type(e.eid) for e in dm.structure.all_edges()}
        assert EdgeType.SAMPLED in types
        dm.check_invariants()

    def test_delete_sampled_edge_is_lazy(self):
        dm = self._with_sampled()
        sampled = [
            rec.eid
            for rec in dm.structure.recs.values()
            if rec.type == EdgeType.SAMPLED
        ]
        owner = dm.structure.rec(sampled[0]).owner
        level_before = dm.structure.rec(owner).level
        dm.delete_edges([sampled[0]])
        assert dm.structure.rec(owner).level == level_before  # level frozen
        dm.check_invariants()

    def test_delete_all_sampled_then_match(self):
        dm = self._with_sampled()
        sampled = [
            rec.eid
            for rec in dm.structure.recs.values()
            if rec.type == EdgeType.SAMPLED
        ]
        dm.delete_edges(sampled)
        dm.check_invariants()
        # now delete the match itself
        for eid in list(dm.matched_ids()):
            dm.delete_edges([eid])
        dm.check_invariants()


class TestHeavyPath:
    def test_star_churn_exercises_settling(self):
        """Repeatedly deleting the star's matched edge forces the heavy
        path once the center match accumulates > 4r^2 cross edges."""
        dm = DynamicMatching(seed=3, rank=2)
        dm.insert_edges(star_edges(64))
        rounds = 0
        for _ in range(6):
            m = dm.matched_ids()
            if not m:
                break
            stats = dm.delete_edges(m)
            rounds += stats.num_rounds
            dm.check_invariants()
        assert rounds >= 1, "expected at least one randomSettle round"

    def test_settled_match_level_matches_sample_size(self):
        dm = DynamicMatching(seed=1, rank=2)
        dm.insert_edges(star_edges(64))
        dm.delete_edges(dm.matched_ids())
        for eid in dm.matched_ids():
            rec = dm.structure.rec(eid)
            assert rec.settle_size >= 1
            assert 2**rec.level <= rec.settle_size < 2 ** (rec.level + 1)

    def test_stolen_and_bloated_counted_as_induced(self):
        dm = DynamicMatching(seed=5, rank=2)
        # dense multigraph-ish instance on few vertices
        edges = erdos_renyi_edges(10, 40, np.random.default_rng(8))
        dm.insert_edges(edges)
        ids = [e.eid for e in edges]
        rng = np.random.default_rng(9)
        rng.shuffle(ids)
        for i in range(0, len(ids), 10):
            dm.delete_edges(ids[i : i + 10])
            dm.check_invariants()
        counts = dm.tracker.counts()
        assert counts["alive"] == 0
        assert counts["natural"] >= 1


class TestRandomScripts:
    @pytest.mark.parametrize("seed", range(6))
    def test_random_graph_script(self, seed):
        rng = np.random.default_rng(seed)
        edges = erdos_renyi_edges(25, 120, rng)
        dm = DynamicMatching(seed=seed + 100, rank=2)
        mirror = Hypergraph()
        # interleave inserts and deletes
        pending = list(edges)
        live: list = []
        for step in range(12):
            if pending and (not live or rng.random() < 0.6):
                k = min(len(pending), int(rng.integers(1, 25)))
                batch, pending = pending[:k], pending[k:]
                dm.insert_edges(batch)
                mirror.add_edges(batch)
                live += batch
            else:
                k = min(len(live), int(rng.integers(1, 25)))
                idx = rng.choice(len(live), size=k, replace=False)
                batch_ids = [live[i].eid for i in idx]
                live = [e for e in live if e.eid not in set(batch_ids)]
                dm.delete_edges(batch_ids)
                mirror.remove_edges(batch_ids)
            assert_consistent(dm, mirror)

    @pytest.mark.parametrize("rank", [3, 4, 5])
    def test_hypergraph_script(self, rank):
        rng = np.random.default_rng(rank)
        edges = random_hypergraph_edges(20, 150, rank, rng, uniform=False)
        dm = DynamicMatching(seed=rank, rank=rank)
        mirror = Hypergraph()
        dm.insert_edges(edges)
        mirror.add_edges(edges)
        assert_consistent(dm, mirror)
        ids = [e.eid for e in edges]
        rng.shuffle(ids)
        for i in range(0, len(ids), 30):
            batch = ids[i : i + 30]
            dm.delete_edges(batch)
            mirror.remove_edges(batch)
            assert_consistent(dm, mirror)

    def test_empty_to_empty_many_cycles(self):
        dm = DynamicMatching(seed=17, rank=2)
        for cycle in range(5):
            edges = erdos_renyi_edges(
                15, 60, np.random.default_rng(cycle), start_eid=cycle * 1000
            )
            dm.insert_edges(edges)
            dm.check_invariants()
            dm.delete_edges([e.eid for e in edges])
            dm.check_invariants()
            assert len(dm) == 0


class TestQueries:
    def test_match_of_uncovered_vertex(self):
        dm = DynamicMatching(seed=0)
        assert dm.match_of(42) is None

    def test_contains_and_len(self):
        dm = DynamicMatching(seed=0)
        dm.insert_edges([Edge(0, (1, 2))])
        assert 0 in dm and 1 not in dm
        assert len(dm) == 1

    def test_current_graph_mirror(self):
        dm = DynamicMatching(seed=0)
        dm.insert_edges([Edge(0, (1, 2)), Edge(1, (2, 3))])
        g = dm.current_graph()
        assert len(g) == 2 and g.rank == 2

    def test_is_matched(self):
        dm = DynamicMatching(seed=0)
        dm.insert_edges([Edge(0, (1, 2)), Edge(1, (2, 3))])
        matched = dm.matched_ids()[0]
        assert dm.is_matched(matched)
        assert not dm.is_matched(1 - matched)


class TestBatchStats:
    def test_stats_recorded_per_batch(self):
        dm = DynamicMatching(seed=0)
        dm.insert_edges([Edge(0, (1, 2))])
        dm.delete_edges([0])
        assert len(dm.batch_stats) == 2
        assert dm.batch_stats[0].kind == "insert"
        assert dm.batch_stats[1].kind == "delete"
        assert dm.batch_stats[1].work > 0

    def test_work_depth_measured(self):
        dm = DynamicMatching(seed=0)
        stats = dm.insert_edges([Edge(i, (2 * i, 2 * i + 1)) for i in range(20)])
        assert stats.work > 0 and stats.depth > 0
        assert stats.work == dm.ledger.work


class TestAblationParameters:
    @pytest.mark.parametrize("alpha", [2, 3, 4])
    def test_alpha_variants_stay_correct(self, alpha):
        edges = erdos_renyi_edges(20, 80, np.random.default_rng(alpha))
        dm = DynamicMatching(seed=alpha, rank=2, alpha=alpha)
        mirror = Hypergraph()
        dm.insert_edges(edges)
        mirror.add_edges(edges)
        ids = [e.eid for e in edges]
        np.random.default_rng(0).shuffle(ids)
        for i in range(0, len(ids), 20):
            dm.delete_edges(ids[i : i + 20])
            mirror.remove_edges(ids[i : i + 20])
            assert_consistent(dm, mirror)

    @pytest.mark.parametrize("heavy_factor", [0.0, 1.0, 16.0])
    def test_heavy_factor_variants_stay_correct(self, heavy_factor):
        edges = erdos_renyi_edges(15, 60, np.random.default_rng(7))
        dm = DynamicMatching(seed=7, rank=2, heavy_factor=heavy_factor)
        mirror = Hypergraph()
        dm.insert_edges(edges)
        mirror.add_edges(edges)
        ids = [e.eid for e in edges]
        for i in range(0, len(ids), 15):
            dm.delete_edges(ids[i : i + 15])
            mirror.remove_edges(ids[i : i + 15])
            assert_consistent(dm, mirror)
