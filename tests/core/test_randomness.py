"""Statistical tests of the randomness the oblivious-adversary defense
rests on.

The algorithm is only safe because the adversary cannot predict WHICH edge
is matched.  These tests estimate match distributions over many seeds and
check them against the exact distributions (small cases, chi-square via
scipy) or sanity envelopes (larger cases).
"""

import numpy as np
import pytest
from scipy import stats as sstats

from repro.core.dynamic_matching import DynamicMatching
from repro.hypergraph.edge import Edge
from repro.static_matching.sequential_greedy import sequential_greedy_match
from repro.workloads.generators import star_edges

TRIALS = 600


class TestStaticMatcherDistributions:
    def test_triangle_uniform(self):
        """On a triangle, greedy matches the minimum-priority edge — each
        of the 3 edges with probability exactly 1/3."""
        edges = [Edge(0, (1, 2)), Edge(1, (2, 3)), Edge(2, (1, 3))]
        counts = np.zeros(3)
        for seed in range(TRIALS):
            r = sequential_greedy_match(edges, rng=np.random.default_rng(seed))
            counts[r.matched_ids[0]] += 1
        chi = sstats.chisquare(counts)
        assert chi.pvalue > 0.001, f"counts {counts}, p={chi.pvalue:.4f}"

    def test_star_match_uniform(self):
        """On a star all edges conflict; the matched one is the priority
        minimum — uniform over the k edges."""
        k = 6
        edges = star_edges(k + 1)
        counts = np.zeros(k)
        for seed in range(TRIALS):
            r = sequential_greedy_match(edges, rng=np.random.default_rng(seed + 10_000))
            counts[r.matched_ids[0]] += 1
        chi = sstats.chisquare(counts)
        assert chi.pvalue > 0.001, f"counts {counts}, p={chi.pvalue:.4f}"

    def test_path3_distribution(self):
        """Path a-b-c: the middle edge is matched iff it has the minimum
        priority (prob 1/3); otherwise both end edges are matched."""
        edges = [Edge(0, (1, 2)), Edge(1, (2, 3)), Edge(2, (3, 4))]
        middle_alone = 0
        for seed in range(TRIALS):
            r = sequential_greedy_match(edges, rng=np.random.default_rng(seed + 20_000))
            if r.matched_ids == [1]:
                middle_alone += 1
        p_hat = middle_alone / TRIALS
        # exact probability 1/3; allow 4 sigma
        sigma = (1 / 3 * 2 / 3 / TRIALS) ** 0.5
        assert abs(p_hat - 1 / 3) < 4 * sigma, p_hat


class TestDynamicMatcherUnpredictability:
    def test_settle_match_spreads_over_candidates(self):
        """After the star's center match dies, the replacement is drawn
        from a large sample — an adversary cannot point at it."""
        k = 12
        seen = set()
        for seed in range(120):
            dm = DynamicMatching(rank=2, seed=seed)
            dm.insert_edges(star_edges(k + 1))
            dm.delete_edges(dm.matched_ids())
            new = dm.matched_ids()
            if new:
                seen.add(new[0])
        # at least half the surviving edges get matched in some run
        assert len(seen) >= k // 2, seen

    def test_insert_match_choice_varies(self):
        """Simultaneously inserted conflicting edges: the winner varies."""
        winners = set()
        for seed in range(60):
            dm = DynamicMatching(rank=2, seed=seed)
            dm.insert_edges([Edge(0, (1, 2)), Edge(1, (1, 2)), Edge(2, (1, 2))])
            winners.add(dm.matched_ids()[0])
        assert winners == {0, 1, 2}

    def test_same_seed_is_deterministic(self):
        runs = []
        for _ in range(2):
            dm = DynamicMatching(rank=2, seed=77)
            dm.insert_edges(star_edges(30))
            dm.delete_edges(dm.matched_ids())
            runs.append((tuple(dm.matched_ids()), dm.ledger.work))
        assert runs[0] == runs[1]

    def test_sample_sizes_track_candidates(self):
        """The settle sample over a k-star has size ~k (all candidates),
        so the expected number of cheap deletes before the match is ~k/2."""
        k = 40
        sizes = []
        for seed in range(40):
            dm = DynamicMatching(rank=2, seed=seed)
            dm.insert_edges(star_edges(k + 1))
            dm.delete_edges(dm.matched_ids())
            for ep in dm.tracker.live_epochs():
                sizes.append(ep.sample_size)
        assert np.mean(sizes) > k / 2, np.mean(sizes)
